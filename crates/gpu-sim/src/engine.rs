//! The execution engine.
//!
//! [`VirtualGpu::launch`] runs one kernel iteration; [`VirtualGpu::execute`]
//! runs the kernel persistently — the whole `do { … } while (changed)` loop
//! of the paper's Figure 3 inside one thread scope, with software global
//! barriers between phases and iterations instead of kernel relaunches.
//!
//! Scheduling model: the grid's blocks are dealt round-robin to
//! `min(num_sms, blocks)` host workers. A worker runs phase `p` of every
//! thread of every block it owns (warp by warp, lane by lane — lockstep
//! within a warp is the sequential order), then crosses the global barrier.
//! Because a block never splits across workers, `__syncthreads()` is
//! implied at each phase boundary and [`crate::BlockLocal`] state is
//! race-free by construction.
//!
//! ## Failure containment
//!
//! A panicking virtual thread takes its worker down; the worker poisons the
//! global barrier so its siblings fail fast instead of hanging, and the
//! engine reports *where* execution died as a structured [`LaunchError`]
//! from [`VirtualGpu::try_launch`] / [`VirtualGpu::try_execute`] (the
//! panicking wrappers [`VirtualGpu::launch`] / [`VirtualGpu::execute`]
//! remain for code that treats kernel failure as fatal). Faults can be
//! injected deterministically via [`crate::fault::FaultPlan`], and a
//! [barrier watchdog](VirtualGpu::set_barrier_watchdog) turns a stalled
//! worker into a [`LaunchError::BarrierStall`] instead of a hang.

use crate::barrier::{make_barrier, GlobalBarrier, BARRIER_POISON_MSG, BARRIER_TIMEOUT_MSG};
use crate::config::GpuConfig;
use crate::cancel::CancelToken;
use crate::costmodel::{WarpScore, WarpTape};
use crate::counters::{LaunchStats, WorkerCounters};
use crate::fault::FaultPlan;
use crate::kernel::{Decision, Kernel, ThreadCtx};
use crate::lens::LensHub;
use morph_metrics::MetricsHub;
use morph_trace::{CountersSnapshot, ProfilerScope, TraceEvent, Tracer};
use morph_tune::AutoTuner;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Structured description of a failed launch: which worker died, where it
/// was in the grid when it died, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// A virtual thread panicked; the worker running its block reports the
    /// site. Sibling workers that died on the poisoned barrier are not
    /// reported — only the primary fault is.
    KernelPanic {
        worker: usize,
        block: usize,
        phase: usize,
        iteration: usize,
        message: String,
    },
    /// The barrier watchdog expired: at least one worker failed to arrive
    /// within the configured timeout (a wedged or stalled SM).
    BarrierStall {
        worker: usize,
        phase: usize,
        iteration: usize,
        timeout: Duration,
    },
    /// The virtual device died out from under the launch (injected via
    /// [`crate::FaultPlan::with_device_loss`]): the slot itself is suspect,
    /// not the kernel. Serving layers treat this as an eviction — move the
    /// job to another slot and debit this slot's health — rather than a
    /// retryable kernel failure.
    DeviceLost {
        worker: usize,
        phase: usize,
        iteration: usize,
    },
}

impl LaunchError {
    /// Is this failure a device loss (slot death) rather than a kernel
    /// fault? Drives eviction-vs-retry decisions in serving layers.
    pub fn is_device_loss(&self) -> bool {
        matches!(self, LaunchError::DeviceLost { .. })
    }
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::KernelPanic {
                worker,
                block,
                phase,
                iteration,
                message,
            } => write!(
                f,
                "kernel panic on worker {worker} (block {block}, phase {phase}, iteration {iteration}): {message}"
            ),
            LaunchError::BarrierStall {
                worker,
                phase,
                iteration,
                timeout,
            } => write!(
                f,
                "barrier stall detected by worker {worker} (phase {phase}, iteration {iteration}): a participant failed to arrive within {timeout:?}"
            ),
            LaunchError::DeviceLost {
                worker,
                phase,
                iteration,
            } => write!(
                f,
                "device lost under worker {worker} (phase {phase}, iteration {iteration}): the slot died mid-launch"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Result of a fallible launch.
pub type LaunchOutcome = Result<LaunchStats, LaunchError>;

/// Where a worker was when it died (updated with plain stores as execution
/// advances; read only after the worker's panic has been caught).
#[derive(Clone, Copy, Default)]
struct Progress {
    iteration: usize,
    phase: usize,
    block: usize,
}

/// Per-phase counter accumulator, live only while tracing is enabled.
/// Workers add their phase delta before arriving at the phase barrier;
/// worker 0 reads the monotone totals after the barrier and emits the
/// grid-wide delta. A worker cannot re-enter phase `p` until worker 0 has
/// crossed the *next* barrier, so the post-barrier read is race-free.
struct PhaseAccum {
    active_threads: AtomicU64,
    idle_threads: AtomicU64,
    warps: AtomicU64,
    divergent_warps: AtomicU64,
    atomics: AtomicU64,
    aborts: AtomicU64,
    commits: AtomicU64,
    barriers: AtomicU64,
    gmem_accesses: AtomicU64,
    gmem_transactions: AtomicU64,
    smem_accesses: AtomicU64,
    smem_conflicts: AtomicU64,
    atomic_serial: AtomicU64,
    active_warps: AtomicU64,
}

impl PhaseAccum {
    fn new() -> Self {
        PhaseAccum {
            active_threads: AtomicU64::new(0),
            idle_threads: AtomicU64::new(0),
            warps: AtomicU64::new(0),
            divergent_warps: AtomicU64::new(0),
            atomics: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
            gmem_accesses: AtomicU64::new(0),
            gmem_transactions: AtomicU64::new(0),
            smem_accesses: AtomicU64::new(0),
            smem_conflicts: AtomicU64::new(0),
            atomic_serial: AtomicU64::new(0),
            active_warps: AtomicU64::new(0),
        }
    }

    fn add(&self, d: &CountersSnapshot) {
        self.active_threads.fetch_add(d.active_threads, Ordering::Relaxed);
        self.idle_threads.fetch_add(d.idle_threads, Ordering::Relaxed);
        self.warps.fetch_add(d.warps, Ordering::Relaxed);
        self.divergent_warps.fetch_add(d.divergent_warps, Ordering::Relaxed);
        self.atomics.fetch_add(d.atomics, Ordering::Relaxed);
        self.aborts.fetch_add(d.aborts, Ordering::Relaxed);
        self.commits.fetch_add(d.commits, Ordering::Relaxed);
        self.barriers.fetch_add(d.barriers, Ordering::Relaxed);
        self.gmem_accesses.fetch_add(d.gmem_accesses, Ordering::Relaxed);
        self.gmem_transactions.fetch_add(d.gmem_transactions, Ordering::Relaxed);
        self.smem_accesses.fetch_add(d.smem_accesses, Ordering::Relaxed);
        self.smem_conflicts.fetch_add(d.smem_conflicts, Ordering::Relaxed);
        self.atomic_serial.fetch_add(d.atomic_serial, Ordering::Relaxed);
        self.active_warps.fetch_add(d.active_warps, Ordering::Relaxed);
    }

    fn totals(&self) -> CountersSnapshot {
        CountersSnapshot {
            active_threads: self.active_threads.load(Ordering::Relaxed),
            idle_threads: self.idle_threads.load(Ordering::Relaxed),
            warps: self.warps.load(Ordering::Relaxed),
            divergent_warps: self.divergent_warps.load(Ordering::Relaxed),
            atomics: self.atomics.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            gmem_accesses: self.gmem_accesses.load(Ordering::Relaxed),
            gmem_transactions: self.gmem_transactions.load(Ordering::Relaxed),
            smem_accesses: self.smem_accesses.load(Ordering::Relaxed),
            smem_conflicts: self.smem_conflicts.load(Ordering::Relaxed),
            atomic_serial: self.atomic_serial.load(Ordering::Relaxed),
            active_warps: self.active_warps.load(Ordering::Relaxed),
        }
    }
}

/// Per-launch tracing state, allocated only when a tracer or a phase
/// profiler is attached (the profiler reuses the same per-phase
/// accumulators and worker-0 timing; with only a profiler armed the
/// tracer handle is disabled and every emit stays a single branch).
struct TraceState {
    tracer: Tracer,
    launch: u64,
    accums: Vec<PhaseAccum>,
    profiler: Option<ProfilerScope>,
}

/// Per-launch metrics state: registry handles resolved once per launch,
/// allocated only when a [`MetricsHub`] is attached. Mirrors the
/// [`TraceState`] zero-cost contract — the disabled path allocates
/// nothing and the hot loop never sees a registry lock.
struct MetricsState {
    txn_per_warp: Arc<morph_metrics::Histogram>,
    conflicts_per_warp: Arc<morph_metrics::Histogram>,
    serial_per_warp: Arc<morph_metrics::Histogram>,
    occupancy_pct: Arc<morph_metrics::Histogram>,
    gmem_accesses: Arc<morph_metrics::Counter>,
    gmem_transactions: Arc<morph_metrics::Counter>,
    smem_conflicts: Arc<morph_metrics::Counter>,
    atomic_serial: Arc<morph_metrics::Counter>,
}

impl MetricsState {
    fn new(hub: &MetricsHub) -> Self {
        let h = |name: &str, help: &str| hub.histogram(name, help).expect("hub is enabled");
        let c = |name: &str, help: &str| hub.counter(name, help).expect("hub is enabled");
        MetricsState {
            txn_per_warp: h(
                "morph_warp_gmem_transactions",
                "Global-memory transactions per warp per phase (32-byte segment model)",
            ),
            conflicts_per_warp: h(
                "morph_warp_smem_conflicts",
                "Shared-memory bank conflicts per warp per phase (warp_size banks, word-interleaved)",
            ),
            serial_per_warp: h(
                "morph_warp_atomic_serial",
                "Same-address atomic serialization steps per warp per phase",
            ),
            occupancy_pct: h(
                "morph_launch_occupancy_pct",
                "Achieved occupancy per launch: percent of warp executions with an active lane",
            ),
            gmem_accesses: c(
                "morph_gmem_accesses_total",
                "Metered global-memory accesses (loads, stores, atomics)",
            ),
            gmem_transactions: c(
                "morph_gmem_transactions_total",
                "32-byte global-memory transactions after warp coalescing",
            ),
            smem_conflicts: c(
                "morph_smem_conflicts_total",
                "Shared-memory bank conflicts",
            ),
            atomic_serial: c(
                "morph_atomic_serial_total",
                "Serialization steps from same-address atomics within a warp",
            ),
        }
    }

    /// Feed one warp's score into the per-warp distributions. Empty
    /// dimensions are skipped so a warp that never touched shared memory
    /// does not drag the conflict histogram toward zero.
    fn record_warp(&self, s: &WarpScore) {
        if s.gmem_accesses > 0 {
            self.txn_per_warp.record(s.gmem_transactions);
        }
        if s.smem_accesses > 0 {
            self.conflicts_per_warp.record(s.smem_conflicts);
        }
        if s.atomic_ops > 0 {
            self.serial_per_warp.record(s.atomic_serial);
        }
    }

    /// Publish launch totals into the live registry counters.
    fn finish(&self, stats: &LaunchStats) {
        self.gmem_accesses.add(stats.gmem_accesses);
        self.gmem_transactions.add(stats.gmem_transactions);
        self.smem_conflicts.add(stats.smem_conflicts);
        self.atomic_serial.add(stats.atomic_serial);
        if let Some(pct) = (100 * stats.active_warps).checked_div(stats.warps) {
            self.occupancy_pct.record(pct);
        }
    }
}

/// A virtual GPU: a launch configuration plus the machinery to run
/// [`Kernel`]s under the SIMT execution model.
pub struct VirtualGpu {
    cfg: GpuConfig,
    faults: Option<Arc<FaultPlan>>,
    barrier_watchdog: Option<Duration>,
    tracer: Tracer,
    metrics: MetricsHub,
    cancel: CancelToken,
    /// Progress heartbeat: bumped once per completed launch (and again by
    /// `drive_recovering` at every host-action boundary). A watchdog that
    /// sees this stand still knows the job is wedged, not merely slow
    /// between observations.
    heartbeat: Option<Arc<AtomicU64>>,
    /// Continuous phase profiler: when armed, per-phase counter deltas
    /// and wall times are folded into the shared `PhaseProfiler` even
    /// with no tracer attached.
    profiler: Option<ProfilerScope>,
    /// Closed-loop autotuner handle (`morph-tune`). The engine itself
    /// never consults the controller — recovering host loops do — but an
    /// enabled tuner arms the cost-model tape so the counters the
    /// controller feeds on (occupancy, coalescing, divergence) are
    /// measured even with no tracer or metrics hub attached.
    tuner: AutoTuner,
    /// morph-lens attribution hub. When enabled it arms the cost-model
    /// tape and buckets every metered access per phase × registered
    /// structure; the default disabled handle costs one branch per warp.
    lens: LensHub,
    launch_seq: AtomicU64,
    /// True while a launch is executing on this GPU. Host-side exclusive
    /// access to device buffers (`SharedSlice::as_mut_slice`/`to_vec`) is
    /// only legal while this is false — the quiescence contract.
    in_flight: AtomicBool,
}

impl VirtualGpu {
    pub fn new(cfg: GpuConfig) -> Self {
        assert!(cfg.warp_size >= 1, "warp size must be at least 1");
        Self {
            cfg,
            faults: None,
            barrier_watchdog: None,
            tracer: Tracer::disabled(),
            metrics: MetricsHub::disabled(),
            cancel: CancelToken::new(),
            heartbeat: None,
            profiler: None,
            tuner: AutoTuner::default(),
            lens: LensHub::disabled(),
            launch_seq: AtomicU64::new(0),
            in_flight: AtomicBool::new(false),
        }
    }

    /// Is a launch currently executing on this GPU? Host code must see
    /// `false` before touching device buffers non-atomically.
    pub fn launch_in_flight(&self) -> bool {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Attach a tracer. Subsequent launches emit `LaunchBegin`,
    /// per-iteration `PhaseSpan` (grid-wide counter delta + worker-0 wall
    /// time including the barrier wait) and `LaunchEnd` events. The
    /// default [`Tracer::disabled`] handle makes every emission a single
    /// branch — no events are built and no per-launch state is allocated.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer handle (disabled by default). Pipelines clone
    /// this to emit their own algorithm-level events alongside the
    /// engine's spans.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attach a metrics hub. Subsequent launches arm the hardware cost
    /// model (coalescing, bank conflicts, atomic serialization) and feed
    /// per-warp distributions plus launch totals into the hub's registry.
    /// The default [`MetricsHub::disabled`] hub keeps the cost model off
    /// entirely — no tape is allocated and no access is metered.
    pub fn set_metrics(&mut self, hub: MetricsHub) {
        self.metrics = hub;
    }

    /// The attached metrics hub (disabled by default).
    pub fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }

    /// Attach the autotuner handle. The default detached
    /// [`AutoTuner::default`] costs nothing; an enabled handle arms the
    /// cost-model tape on subsequent launches (the controller's inputs
    /// must be measured, not guessed) and recovering host loops read the
    /// configuration to build their per-pipeline [`morph_tune::Controller`].
    pub fn set_tuner(&mut self, tuner: AutoTuner) {
        self.tuner = tuner;
    }

    /// The attached autotuner handle (detached by default).
    pub fn tuner(&self) -> &AutoTuner {
        &self.tuner
    }

    /// Attach the morph-lens attribution hub. An enabled hub arms the
    /// cost-model tape on subsequent launches and buckets every metered
    /// global access per **phase × registered structure** (plus
    /// same-address atomic serialization and a bounded hot-address
    /// table). At each launch end the per-launch delta is emitted as
    /// `lens` trace events (when a tracer is attached) and added to the
    /// `morph_lens_*` metric families (when a metrics hub is attached);
    /// the cumulative state is always available via
    /// [`VirtualGpu::lens`]`().snapshot()`. The default
    /// [`LensHub::disabled`] handle keeps all of it off.
    pub fn set_lens(&mut self, hub: LensHub) {
        self.lens = hub;
    }

    /// The attached lens hub (disabled by default). Pipelines clone this
    /// to register their device structures' address windows.
    pub fn lens(&self) -> &LensHub {
        &self.lens
    }

    /// Attach a cancellation token. The engine itself never aborts a
    /// launch mid-kernel; host loops (`morph_core::drive_recovering`)
    /// consult this token at host-action boundaries and unwind with a
    /// structured error, so a cancelled job releases the device with
    /// quiescent buffers.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// The attached cancellation token (a fresh, never-cancelled token by
    /// default).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Arm (or disarm) the continuous phase profiler. Subsequent
    /// launches attribute each phase's modelled cycles and wall time to
    /// the scope's `algo;iteration-class;phase` cells — the flamegraph
    /// source. Arming the profiler also arms the cost-model tape, so the
    /// attribution includes memory/atomic/conflict costs even when no
    /// tracer or metrics hub is attached. `None` (the default) allocates
    /// nothing.
    pub fn set_profiler(&mut self, scope: Option<ProfilerScope>) {
        self.profiler = scope;
    }

    /// The armed profiler scope, if any. Recovering host loops use this
    /// to keep the scope's host-iteration base in step with the drive
    /// loop.
    pub fn profiler(&self) -> Option<&ProfilerScope> {
        self.profiler.as_ref()
    }

    /// Attach a progress heartbeat. Each completed launch increments it;
    /// a hung-job watchdog (e.g. `morph-serve`) compares successive reads
    /// to tell a wedged job from a slow one. `None` (the default) costs
    /// nothing.
    pub fn set_heartbeat(&mut self, beat: Option<Arc<AtomicU64>>) {
        self.heartbeat = beat;
    }

    /// Bump the attached heartbeat, if any. Called by the engine after
    /// every completed launch and by recovering host loops at every
    /// host-action boundary.
    #[inline]
    pub fn beat(&self) {
        if let Some(b) = &self.heartbeat {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Replace the launch geometry (used by the adaptive-parallelism
    /// controller between launches, paper §7.4).
    pub fn set_geometry(&mut self, blocks: usize, threads_per_block: usize) {
        self.cfg = self.cfg.clone().with_geometry(blocks, threads_per_block);
    }

    /// Attach a fault-injection plan; subsequent launches advance its
    /// launch counter and consult it. See [`crate::fault::FaultPlan`].
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Detach the fault plan, returning it (e.g. to assert it fired).
    pub fn clear_fault_plan(&mut self) -> Option<Arc<FaultPlan>> {
        self.faults.take()
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Arm (or disarm, with `None`) the barrier watchdog: if any barrier
    /// participant spins longer than `timeout` waiting for the others, the
    /// launch fails with [`LaunchError::BarrierStall`] instead of hanging.
    pub fn set_barrier_watchdog(&mut self, timeout: Option<Duration>) {
        self.barrier_watchdog = timeout;
    }

    /// Run a single kernel iteration (all phases once).
    ///
    /// # Panics
    /// Panics if a virtual thread panics; use [`VirtualGpu::try_launch`]
    /// for structured error recovery.
    pub fn launch<K: Kernel + ?Sized>(&self, kernel: &K) -> LaunchStats {
        self.drive(kernel, false)
            .unwrap_or_else(|e| panic!("virtual GPU launch failed: {e}"))
    }

    /// Run the kernel persistently: iterate all phases, consult
    /// [`Kernel::next_iteration`], repeat until it returns
    /// [`Decision::Stop`]. Equivalent to re-launching in a host loop, minus
    /// the launch overhead (the paper's persistent pattern).
    ///
    /// # Panics
    /// Panics if a virtual thread panics; use [`VirtualGpu::try_execute`]
    /// for structured error recovery.
    pub fn execute<K: Kernel + ?Sized>(&self, kernel: &K) -> LaunchStats {
        self.drive(kernel, true)
            .unwrap_or_else(|e| panic!("virtual GPU execution failed: {e}"))
    }

    /// Fallible [`VirtualGpu::launch`]: worker panics are caught and
    /// returned as a [`LaunchError`] naming the failed block/phase. Partial
    /// counter state from a failed launch is discarded.
    pub fn try_launch<K: Kernel + ?Sized>(&self, kernel: &K) -> LaunchOutcome {
        self.drive(kernel, false)
    }

    /// Fallible [`VirtualGpu::execute`].
    pub fn try_execute<K: Kernel + ?Sized>(&self, kernel: &K) -> LaunchOutcome {
        self.drive(kernel, true)
    }

    fn drive<K: Kernel + ?Sized>(&self, kernel: &K, persistent: bool) -> LaunchOutcome {
        // Launch-in-flight flag: overlapping launches on one GPU would
        // break the quiescence contract that host-side bulk accessors rely
        // on, so flag entry and clear on every exit path via the guard.
        let was_in_flight = self.in_flight.swap(true, Ordering::AcqRel);
        debug_assert!(
            !was_in_flight,
            "overlapping launches on one VirtualGpu: host-side exclusive access \
             to device buffers is only legal between launches"
        );
        let _in_flight = InFlightGuard(&self.in_flight);

        // Fresh barrier-epoch nonce for the data-race shadow logs: epochs
        // from different launches must never collide.
        #[cfg(feature = "morph-check")]
        let check_nonce = morph_check::next_launch_nonce();
        #[cfg(not(feature = "morph-check"))]
        let check_nonce = 0u64;

        let cfg = &self.cfg;
        let faults = self.faults.as_deref();
        if let Some(plan) = faults {
            plan.begin_launch();
        }
        let watchdog = self.barrier_watchdog;
        let workers = cfg.effective_workers();
        let phases = kernel.phases().max(1);
        let barrier = make_barrier(cfg.barrier, workers, watchdog);
        let keep_going = AtomicBool::new(false);

        // Per-launch tracing state exists only when a sink or the phase
        // profiler is attached: the disabled path allocates nothing and
        // never builds an event.
        let trace = (self.tracer.enabled() || self.profiler.is_some()).then(|| TraceState {
            tracer: self.tracer.clone(),
            launch: self.launch_seq.fetch_add(1, Ordering::Relaxed),
            accums: (0..phases).map(|_| PhaseAccum::new()).collect(),
            profiler: self.profiler.clone(),
        });
        if let Some(t) = trace.as_ref() {
            t.tracer.emit(|| TraceEvent::LaunchBegin {
                launch: t.launch,
                blocks: cfg.blocks as u64,
                threads_per_block: cfg.threads_per_block as u64,
                phases: phases as u64,
            });
        }
        let trace = trace.as_ref();

        // Per-launch metrics state, same contract: registry handles are
        // resolved once here, never inside the warp loop.
        let mstate = self.metrics.enabled().then(|| MetricsState::new(&self.metrics));
        let mstate = mstate.as_ref();
        // The cost-model tape is armed for any observer: tracer, metrics
        // hub, an enabled autotuner (whose controller consumes the
        // measured occupancy/coalescing/divergence between launches), or
        // the lens attribution hub.
        let meter =
            trace.is_some() || mstate.is_some() || self.tuner.is_enabled() || self.lens.is_enabled();
        let lens = self.lens.is_enabled().then_some(&self.lens);
        let start = Instant::now();

        let mut stats = LaunchStats::default();
        let mut iterations = 0u64;

        if workers == 1 {
            // Degenerate single-worker grid: run inline, no threads.
            let mut counters = WorkerCounters::default();
            let progress = Cell::new(Progress::default());
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_worker(
                    kernel,
                    cfg,
                    0,
                    workers,
                    phases,
                    persistent,
                    barrier.as_ref(),
                    &keep_going,
                    &mut counters,
                    faults,
                    &progress,
                    trace,
                    mstate,
                    meter,
                    lens,
                    check_nonce,
                )
            }));
            match result {
                Ok(iters) => iterations = iters,
                Err(payload) => {
                    return Err(classify_failure(0, progress.get(), payload, watchdog)
                        .expect("a single worker cannot be a secondary barrier casualty"));
                }
            }
            counters.merge_into(&mut stats);
        } else {
            // First failure wins; secondary barrier-poison casualties are
            // not recorded (they are consequences, not causes).
            let failure: Mutex<Option<LaunchError>> = Mutex::new(None);
            let collected = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let barrier = barrier.as_ref();
                    let keep_going = &keep_going;
                    let failure = &failure;
                    handles.push(scope.spawn(move || {
                        let mut counters = WorkerCounters::default();
                        let progress = Cell::new(Progress::default());
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            run_worker(
                                kernel, cfg, w, workers, phases, persistent, barrier,
                                keep_going, &mut counters, faults, &progress, trace,
                                mstate, meter, lens, check_nonce,
                            )
                        }));
                        match result {
                            Ok(iters) => Some((iters, counters)),
                            Err(payload) => {
                                // Record the cause before waking siblings so
                                // their poison panics can never win the race.
                                if let Some(err) =
                                    classify_failure(w, progress.get(), payload, watchdog)
                                {
                                    failure
                                        .lock()
                                        .unwrap_or_else(|e| e.into_inner())
                                        .get_or_insert(err);
                                }
                                barrier.poison();
                                None
                            }
                        }
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .expect("worker bookkeeping panicked outside catch_unwind")
                    })
                    .collect::<Vec<_>>()
            });
            if let Some(err) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
                return Err(err);
            }
            for (iters, counters) in collected.into_iter().flatten() {
                iterations = iterations.max(iters);
                counters.merge_into(&mut stats);
            }
        }

        stats.iterations = iterations;
        stats.phases = iterations * phases as u64;
        stats.barrier_rmws = barrier.rmw_traffic();
        stats.blocks = cfg.blocks;
        stats.threads_per_block = cfg.threads_per_block;
        stats.wall = start.elapsed();
        if let Some(t) = trace {
            t.tracer.emit(|| TraceEvent::LaunchEnd {
                launch: t.launch,
                iterations,
                wall_us: stats.wall.as_micros() as u64,
                totals: stats.snapshot(),
            });
        }
        if let Some(m) = mstate {
            m.finish(&stats);
        }
        // Export this launch's attribution delta: one `lens` trace event
        // per nonzero phase×structure cell, and labelled counter bumps on
        // the `morph_lens_*` metric families. Cumulative state stays in
        // the hub for `/lens` snapshots.
        if self.lens.is_enabled() {
            let rows = self.lens.drain_launch();
            for row in &rows {
                if let Some(t) = trace {
                    let r = row.clone();
                    t.tracer.emit(move || TraceEvent::Lens {
                        launch: t.launch,
                        phase: r.phase,
                        region: r.region.clone(),
                        accesses: r.accesses,
                        transactions: r.transactions,
                        atomic_ops: r.atomic_ops,
                        atomic_serial: r.atomic_serial,
                        hot_addr: r.hot_addr,
                        hot_count: r.hot_count,
                    });
                }
                if self.metrics.enabled() {
                    let hub = self
                        .metrics
                        .clone()
                        .with_label("phase", &row.phase.to_string())
                        .with_label("region", &row.region);
                    let bump = |name: &str, help: &str, v: u64| {
                        if v > 0 {
                            if let Some(c) = hub.counter(name, help) {
                                c.add(v);
                            }
                        }
                    };
                    bump(
                        "morph_lens_gmem_accesses_total",
                        "Metered global accesses attributed per phase and structure",
                        row.accesses,
                    );
                    bump(
                        "morph_lens_gmem_transactions_total",
                        "Coalescing transactions attributed per phase and structure",
                        row.transactions,
                    );
                    bump(
                        "morph_lens_atomic_ops_total",
                        "Atomic RMWs attributed per phase and structure",
                        row.atomic_ops,
                    );
                    bump(
                        "morph_lens_atomic_serial_total",
                        "Same-address atomic serialization steps attributed per phase and structure",
                        row.atomic_serial,
                    );
                }
            }
        }
        self.beat();
        Ok(stats)
    }
}

/// Clears [`VirtualGpu::in_flight`] on every exit path of `drive`,
/// including unwinding.
struct InFlightGuard<'a>(&'a AtomicBool);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

/// Turn a caught worker panic into a [`LaunchError`], or `None` if the
/// panic is a secondary casualty of barrier poisoning (the primary fault is
/// reported by the worker that caused it).
fn classify_failure(
    worker: usize,
    at: Progress,
    payload: Box<dyn std::any::Any + Send>,
    watchdog: Option<Duration>,
) -> Option<LaunchError> {
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    if message == BARRIER_POISON_MSG {
        return None;
    }
    if message == BARRIER_TIMEOUT_MSG {
        return Some(LaunchError::BarrierStall {
            worker,
            phase: at.phase,
            iteration: at.iteration,
            timeout: watchdog.unwrap_or_default(),
        });
    }
    if message == crate::fault::INJECTED_DEVICE_LOSS_MSG {
        return Some(LaunchError::DeviceLost {
            worker,
            phase: at.phase,
            iteration: at.iteration,
        });
    }
    Some(LaunchError::KernelPanic {
        worker,
        block: at.block,
        phase: at.phase,
        iteration: at.iteration,
        message,
    })
}

/// The per-worker loop. Returns the number of iterations executed.
#[allow(clippy::too_many_arguments)]
fn run_worker<K: Kernel + ?Sized>(
    kernel: &K,
    cfg: &GpuConfig,
    worker: usize,
    workers: usize,
    phases: usize,
    persistent: bool,
    barrier: &dyn GlobalBarrier,
    keep_going: &AtomicBool,
    counters: &mut WorkerCounters,
    faults: Option<&FaultPlan>,
    progress: &Cell<Progress>,
    trace: Option<&TraceState>,
    metrics: Option<&MetricsState>,
    meter: bool,
    lens: Option<&LensHub>,
    check_nonce: u64,
) -> u64 {
    let tpb = cfg.threads_per_block;
    let nthreads = cfg.total_threads();
    let my_blocks: Vec<usize> = (worker..cfg.blocks).step_by(workers).collect();
    let my_vthreads = my_blocks.len() * tpb;
    let my_vblocks = my_blocks.len();

    // The cost-model tape records memory accesses whenever any observer
    // (tracer, metrics hub, or enabled autotuner) is attached; unobserved
    // launches skip both the allocation and the per-access pushes.
    let tape = meter.then(WarpTape::new);
    let tape = tape.as_ref();

    // Tracing bookkeeping (allocated only when a sink is attached): each
    // worker remembers its last published counter snapshot so it can push
    // per-phase deltas into the shared accumulators; worker 0 additionally
    // remembers each phase's previous accumulator totals so the emitted
    // span is a grid-wide per-iteration delta, not a running sum.
    let mut my_prev = trace.map(|_| CountersSnapshot::default());
    let mut emitted_prev: Vec<CountersSnapshot> = match trace {
        Some(_) if worker == 0 => vec![CountersSnapshot::default(); phases],
        _ => Vec::new(),
    };

    let mut iteration = 0usize;
    loop {
        // `phase` indexes per-phase trace state as well as driving the
        // kernel, so an iterator over `emitted_prev` would be wrong here.
        #[allow(clippy::needless_range_loop)]
        for phase in 0..phases {
            let phase_start = match trace {
                Some(_) if worker == 0 => Some(Instant::now()),
                _ => None,
            };
            // Device loss is a per-(phase, worker) event: the whole slot
            // dies before it touches any of its blocks this phase, so a
            // half-run phase looks exactly like a kernel-panic retry to
            // the host — but is classified as the slot's fault.
            if let Some(plan) = faults {
                if plan.lose_device(phase, worker) {
                    progress.set(Progress {
                        iteration,
                        phase,
                        block: my_blocks.first().copied().unwrap_or(0),
                    });
                    panic!("{}", crate::fault::INJECTED_DEVICE_LOSS_MSG);
                }
            }
            // Barrier epoch for the data-race shadow logs: unique per
            // (launch, iteration, phase) barrier interval.
            let check_epoch = check_nonce
                .wrapping_mul(1 << 24)
                .wrapping_add((iteration * phases + phase) as u64);
            for &block in &my_blocks {
                progress.set(Progress {
                    iteration,
                    phase,
                    block,
                });
                run_block_phase(
                    kernel, cfg, block, phase, iteration, nthreads, counters, faults,
                    tape, metrics, lens, check_epoch,
                );
            }
            counters.barriers += 1;
            if let Some(t) = trace {
                let cur = counters.snapshot();
                t.accums[phase].add(&cur.delta_since(my_prev.as_ref().unwrap()));
                my_prev = Some(cur);
            }
            if let Some(plan) = faults {
                if let Some(delay) = plan.stall_before_barrier(phase, worker) {
                    std::thread::sleep(delay);
                }
            }
            barrier.wait(worker, my_vthreads, my_vblocks);
            if worker == 0 {
                if let Some(t) = trace {
                    let totals = t.accums[phase].totals();
                    let delta = totals.delta_since(&emitted_prev[phase]);
                    emitted_prev[phase] = totals;
                    let wall = phase_start.expect("worker 0 timed the phase").elapsed();
                    let wall_us = wall.as_micros() as u64;
                    if let Some(p) = &t.profiler {
                        p.record(iteration as u64, phase as u64, wall_us, &delta);
                    }
                    t.tracer.emit(|| TraceEvent::PhaseSpan {
                        launch: t.launch,
                        iteration: iteration as u64,
                        phase: phase as u64,
                        wall_us,
                        delta,
                    });
                }
            }
        }

        iteration += 1;
        if !persistent {
            return iteration as u64;
        }

        // Worker 0 decides; everyone else learns the decision after a
        // second barrier (all workers are quiescent at this point). A
        // stall fault targeting `phase == phases` lands on this barrier.
        if worker == 0 {
            let d = kernel.next_iteration(iteration - 1);
            keep_going.store(d == Decision::Continue, Ordering::Release);
        }
        counters.barriers += 1;
        if let Some(plan) = faults {
            if let Some(delay) = plan.stall_before_barrier(phases, worker) {
                std::thread::sleep(delay);
            }
        }
        barrier.wait(worker, my_vthreads, my_vblocks);
        if !keep_going.load(Ordering::Acquire) {
            return iteration as u64;
        }
    }
}

/// Run one phase of one block: warp by warp, lane by lane.
#[allow(clippy::too_many_arguments)]
#[cfg_attr(not(feature = "morph-check"), allow(unused_variables))]
fn run_block_phase<K: Kernel + ?Sized>(
    kernel: &K,
    cfg: &GpuConfig,
    block: usize,
    phase: usize,
    iteration: usize,
    nthreads: usize,
    counters: &mut WorkerCounters,
    faults: Option<&FaultPlan>,
    tape: Option<&WarpTape>,
    metrics: Option<&MetricsState>,
    lens: Option<&LensHub>,
    check_epoch: u64,
) {
    let tpb = cfg.threads_per_block;
    let warp_size = cfg.warp_size;
    let mut tib = 0usize;
    while tib < tpb {
        let lanes = warp_size.min(tpb - tib);
        let warp = (block * tpb + tib) / warp_size;
        let mut active = 0u64;
        for lane in 0..lanes {
            let thread_in_block = tib + lane;
            let tid = block * tpb + thread_in_block;
            if let Some(plan) = faults {
                if plan.should_panic(phase, block, thread_in_block) {
                    panic!("{}", crate::fault::INJECTED_PANIC_MSG);
                }
            }
            let mut ctx = ThreadCtx {
                tid,
                nthreads,
                block,
                nblocks: cfg.blocks,
                thread_in_block,
                threads_per_block: tpb,
                warp,
                lane,
                iteration,
                counters,
                faults,
                tape,
            };
            // Mark this OS thread as executing virtual thread `tid` in the
            // current barrier interval, so shadow checkers can attribute
            // accesses; the guard unwinds cleanly with a trapping kernel.
            #[cfg(feature = "morph-check")]
            let _scope = morph_check::KernelScope::enter(tid as u64, check_epoch);
            if kernel.run(phase, &mut ctx) {
                active += 1;
            }
        }
        counters.warps += 1;
        if active > 0 {
            counters.active_warps += 1;
            if active < lanes as u64 {
                counters.divergent_warps += 1;
            }
        }
        counters.active_threads += active;
        counters.idle_threads += lanes as u64 - active;
        if let Some(t) = tape {
            // Attribution must read the tape before scoring: scoring
            // sorts the atomics in place and drains everything.
            if let Some(l) = lens {
                t.with_contents(|gmem, atomics| l.attribute(phase as u64, gmem, atomics));
            }
            let score = t.score_and_clear(warp_size);
            counters.gmem_accesses += score.gmem_accesses;
            counters.gmem_transactions += score.gmem_transactions;
            counters.smem_accesses += score.smem_accesses;
            counters.smem_conflicts += score.smem_conflicts;
            counters.atomic_serial += score.atomic_serial;
            if let Some(m) = metrics {
                m.record_warp(&score);
            }
        }
        tib += lanes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::AtomicU32Slice;
    use crate::shared::{BlockLocal, LocalWorklist};
    use std::sync::atomic::AtomicU64;

    /// Histogram via counted atomics, strided partition.
    struct Histogram<'a> {
        data: &'a [u32],
        bins: AtomicU32Slice,
    }

    impl Kernel for Histogram<'_> {
        fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            let mut did = false;
            for i in ctx.strided(self.data.len()) {
                let b = (self.data[i] as usize) % self.bins.len();
                ctx.atomic_add_u32(self.bins.at(b), 1);
                did = true;
            }
            did
        }
    }

    #[test]
    fn histogram_kernel_counts_correctly() {
        let data: Vec<u32> = (0..10_000).collect();
        let k = Histogram {
            data: &data,
            bins: AtomicU32Slice::new(7, 0),
        };
        let gpu = VirtualGpu::new(GpuConfig::small());
        let stats = gpu.launch(&k);
        let bins = k.bins.to_vec();
        assert_eq!(bins.iter().sum::<u32>(), 10_000);
        for (b, &count) in bins.iter().enumerate() {
            let expected = (0..10_000u32).filter(|x| (*x as usize) % 7 == b).count() as u32;
            assert_eq!(count, expected);
        }
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.atomics, 10_000);
    }

    /// Two-phase kernel: phase 0 writes per-thread values, phase 1 reads
    /// *other* threads' values — only correct if the global barrier between
    /// phases is real.
    struct PhaseOrdering {
        scratch: AtomicU32Slice,
        errors: AtomicU32Slice,
    }

    impl Kernel for PhaseOrdering {
        fn phases(&self) -> usize {
            2
        }
        fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            match phase {
                0 => self.scratch.store(ctx.tid, ctx.tid as u32 + 1),
                _ => {
                    let peer = (ctx.tid + ctx.nthreads / 2) % ctx.nthreads;
                    if self.scratch.load(peer) != peer as u32 + 1 {
                        ctx.atomic_add_u32(self.errors.at(0), 1);
                    }
                }
            }
            true
        }
    }

    #[test]
    fn phases_are_globally_ordered() {
        for kind in [
            crate::BarrierKind::NaiveAtomic,
            crate::BarrierKind::Hierarchical,
            crate::BarrierKind::SenseReversing,
        ] {
            let cfg = GpuConfig {
                num_sms: 4,
                warp_size: 8,
                blocks: 8,
                threads_per_block: 32,
                barrier: kind,
            };
            let gpu = VirtualGpu::new(cfg.clone());
            let k = PhaseOrdering {
                scratch: AtomicU32Slice::new(cfg.total_threads(), 0),
                errors: AtomicU32Slice::new(1, 0),
            };
            let stats = gpu.launch(&k);
            assert_eq!(k.errors.load(0), 0, "{kind:?}");
            assert_eq!(stats.phases, 2);
        }
    }

    /// Persistent kernel: accumulate until a target is reached, checking
    /// `next_iteration` plumbing.
    struct CountTo {
        total: AtomicU64,
        target: u64,
    }

    impl Kernel for CountTo {
        fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            if ctx.tid == 0 {
                ctx.atomic_add_u64(&self.total, 1);
                true
            } else {
                false
            }
        }
        fn next_iteration(&self, _iter: usize) -> Decision {
            if self.total.load(Ordering::Acquire) < self.target {
                Decision::Continue
            } else {
                Decision::Stop
            }
        }
    }

    #[test]
    fn persistent_execution_iterates_until_stop() {
        let gpu = VirtualGpu::new(GpuConfig::small());
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 23,
        };
        let stats = gpu.execute(&k);
        assert_eq!(k.total.load(Ordering::Acquire), 23);
        assert_eq!(stats.iterations, 23);
    }

    /// Divergence accounting: odd lanes work, even lanes don't.
    struct HalfActive;
    impl Kernel for HalfActive {
        fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            ctx.lane % 2 == 1
        }
    }

    #[test]
    fn divergence_is_detected() {
        let gpu = VirtualGpu::new(GpuConfig::small());
        let stats = gpu.launch(&HalfActive);
        assert_eq!(stats.divergent_warps, stats.warps);
        assert!(stats.divergence_ratio() > 0.99);
        assert_eq!(stats.active_threads, stats.idle_threads);
    }

    /// Block-local worklists: each block collects its own ids in shared
    /// memory in phase 0 (lane 0 builds the list) and drains it in phase 1.
    struct BlockQueues<'a> {
        queues: &'a BlockLocal<LocalWorklist>,
        drained: AtomicU32Slice,
    }

    impl Kernel for BlockQueues<'_> {
        fn phases(&self) -> usize {
            2
        }
        fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            match phase {
                0 => {
                    if ctx.thread_in_block == 0 {
                        let base = (ctx.block * ctx.threads_per_block) as u32;
                        self.queues.with(ctx, |q| {
                            q.clear();
                            for i in 0..ctx.threads_per_block as u32 {
                                q.push(base + i);
                            }
                        });
                    }
                    true
                }
                _ => {
                    let item = self.queues.with(ctx, |q| q.peek_at(ctx.thread_in_block));
                    if let Some(it) = item {
                        self.drained.store(it as usize, 1);
                        true
                    } else {
                        false
                    }
                }
            }
        }
    }

    #[test]
    fn block_local_worklists_work_under_the_engine() {
        let cfg = GpuConfig::small();
        let queues = BlockLocal::new(cfg.blocks, |_| LocalWorklist::with_capacity(8));
        let k = BlockQueues {
            queues: &queues,
            drained: AtomicU32Slice::new(cfg.total_threads(), 0),
        };
        let gpu = VirtualGpu::new(cfg);
        gpu.launch(&k);
        assert!(k.drained.to_vec().iter().all(|&v| v == 1));
    }

    struct Panicker;
    impl Kernel for Panicker {
        fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            if ctx.tid == 3 {
                panic!("kernel fault");
            }
            true
        }
    }

    #[test]
    fn kernel_panic_propagates_without_hanging() {
        let gpu = VirtualGpu::new(GpuConfig::small());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| gpu.launch(&Panicker)));
        assert!(result.is_err());
    }

    #[test]
    fn try_launch_reports_the_failing_site() {
        let gpu = VirtualGpu::new(GpuConfig::small());
        match gpu.try_launch(&Panicker) {
            Err(LaunchError::KernelPanic {
                block,
                phase,
                iteration,
                message,
                ..
            }) => {
                // tid 3 lives in block 0 under `small()` (tpb = 8).
                assert_eq!(block, 0);
                assert_eq!(phase, 0);
                assert_eq!(iteration, 0);
                assert_eq!(message, "kernel fault");
            }
            other => panic!("expected KernelPanic, got {other:?}"),
        }
    }

    #[test]
    fn try_launch_succeeds_like_launch() {
        let data: Vec<u32> = (0..100).collect();
        let k = Histogram {
            data: &data,
            bins: AtomicU32Slice::new(3, 0),
        };
        let gpu = VirtualGpu::new(GpuConfig::small());
        let stats = gpu.try_launch(&k).expect("no faults configured");
        assert_eq!(k.bins.to_vec().iter().sum::<u32>(), 100);
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.blocks, 4);
        assert_eq!(stats.threads_per_block, 8);
    }

    #[test]
    fn injected_panic_is_contained_and_sited() {
        let mut gpu = VirtualGpu::new(GpuConfig::small());
        let plan = Arc::new(FaultPlan::new().with_kernel_panic(0, 0, 2, 5));
        gpu.set_fault_plan(Arc::clone(&plan));
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 1,
        };
        match gpu.try_launch(&k) {
            Err(LaunchError::KernelPanic { block, phase, message, .. }) => {
                assert_eq!(block, 2);
                assert_eq!(phase, 0);
                assert_eq!(message, crate::fault::INJECTED_PANIC_MSG);
            }
            other => panic!("expected injected KernelPanic, got {other:?}"),
        }
        assert!(plan.exhausted());
        // The plan fired once; the next launch is clean.
        let stats = gpu.try_launch(&k).expect("fault already consumed");
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn injected_device_loss_is_classified_and_fires_once() {
        let mut gpu = VirtualGpu::new(GpuConfig::small());
        let plan = Arc::new(FaultPlan::new().with_device_loss(0, 0, 1));
        gpu.set_fault_plan(Arc::clone(&plan));
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 1,
        };
        match gpu.try_launch(&k) {
            Err(e @ LaunchError::DeviceLost { worker, phase, iteration }) => {
                assert!(e.is_device_loss());
                assert_eq!(worker, 1);
                assert_eq!(phase, 0);
                assert_eq!(iteration, 0);
            }
            other => panic!("expected DeviceLost, got {other:?}"),
        }
        assert!(plan.exhausted());
        // Fires once: the "new slot" (same gpu here) runs clean — a
        // resumed job must not re-lose its replacement device.
        let stats = gpu.try_launch(&k).expect("loss already consumed");
        assert_eq!(stats.iterations, 1);
    }

    #[test]
    fn heartbeat_counts_completed_launches() {
        let mut gpu = VirtualGpu::new(GpuConfig::small());
        let beat = Arc::new(AtomicU64::new(0));
        gpu.set_heartbeat(Some(Arc::clone(&beat)));
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 1,
        };
        gpu.try_launch(&k).unwrap();
        gpu.try_launch(&k).unwrap();
        assert_eq!(beat.load(Ordering::Relaxed), 2);
        // A failed launch does not beat: the watchdog must see a wedged
        // slot as silent.
        gpu.set_fault_plan(Arc::new(FaultPlan::new().with_device_loss(0, 0, 0)));
        let _ = gpu.try_launch(&k);
        assert_eq!(beat.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn injected_stall_trips_the_watchdog() {
        let mut gpu = VirtualGpu::new(GpuConfig::small());
        gpu.set_barrier_watchdog(Some(Duration::from_millis(50)));
        gpu.set_fault_plan(Arc::new(FaultPlan::new().with_barrier_stall(
            0,
            0,
            1,
            Duration::from_secs(2),
        )));
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 1,
        };
        let start = Instant::now();
        match gpu.try_launch(&k) {
            Err(LaunchError::BarrierStall { timeout, .. }) => {
                assert_eq!(timeout, Duration::from_millis(50));
            }
            other => panic!("expected BarrierStall, got {other:?}"),
        }
        // Detection must not wait out the full 2 s stall... but the scope
        // joins the stalled worker, so the wall clock includes its sleep.
        // What matters is that we got a structured error, not a hang.
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn watchdog_quiet_when_no_stall() {
        let mut gpu = VirtualGpu::new(GpuConfig::small());
        gpu.set_barrier_watchdog(Some(Duration::from_secs(5)));
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 7,
        };
        let stats = gpu.try_execute(&k).expect("no stall expected");
        assert_eq!(stats.iterations, 7);
    }

    #[test]
    fn degenerate_geometries_work() {
        // warp bigger than block, single block, single thread, more SMs
        // than blocks — all must execute every thread exactly once.
        for (sms, warp, blocks, tpb) in [
            (4usize, 64usize, 1usize, 8usize),
            (1, 1, 3, 5),
            (8, 32, 2, 1),
            (2, 7, 5, 13),
        ] {
            let cfg = GpuConfig {
                num_sms: sms,
                warp_size: warp,
                blocks,
                threads_per_block: tpb,
                barrier: crate::BarrierKind::SenseReversing,
            };
            let hits = AtomicU32Slice::new(cfg.total_threads(), 0);
            struct Once<'a>(&'a AtomicU32Slice);
            impl Kernel for Once<'_> {
                fn run(&self, _p: usize, ctx: &mut ThreadCtx<'_>) -> bool {
                    ctx.atomic_add_u32(self.0.at(ctx.tid), 1);
                    true
                }
            }
            VirtualGpu::new(cfg).launch(&Once(&hits));
            assert!(
                hits.to_vec().iter().all(|&h| h == 1),
                "({sms},{warp},{blocks},{tpb})"
            );
        }
    }

    #[test]
    fn single_worker_failures_are_structured_too() {
        let cfg = GpuConfig::small().with_geometry(1, 8).with_sms(1);
        let gpu = VirtualGpu::new(cfg);
        match gpu.try_launch(&Panicker) {
            Err(LaunchError::KernelPanic { worker, message, .. }) => {
                assert_eq!(worker, 0);
                assert_eq!(message, "kernel fault");
            }
            other => panic!("expected KernelPanic, got {other:?}"),
        }
    }

    #[test]
    fn iteration_counter_visible_to_threads() {
        struct IterCheck {
            max_seen: AtomicU64,
        }
        impl Kernel for IterCheck {
            fn run(&self, _p: usize, ctx: &mut ThreadCtx<'_>) -> bool {
                self.max_seen
                    .fetch_max(ctx.iteration as u64, Ordering::AcqRel);
                true
            }
            fn next_iteration(&self, iter: usize) -> Decision {
                if iter < 4 {
                    Decision::Continue
                } else {
                    Decision::Stop
                }
            }
        }
        let k = IterCheck {
            max_seen: AtomicU64::new(0),
        };
        VirtualGpu::new(GpuConfig::small()).execute(&k);
        assert_eq!(k.max_seen.load(Ordering::Acquire), 4);
    }

    /// Every thread launches exactly one speculative activity; some abort,
    /// some commit, some lanes idle.
    struct Speculator;
    impl Kernel for Speculator {
        fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            if ctx.tid.is_multiple_of(3) {
                ctx.abort();
            } else {
                ctx.commit();
            }
            ctx.tid.is_multiple_of(2)
        }
    }

    #[test]
    fn counters_are_conserved() {
        // Satellite: with warp-aligned geometry (tpb divisible by
        // warp_size, so no partial warps) the lane accounting must balance
        // exactly — every lane of every warp execution is either active or
        // idle — and every speculative activity either aborts or commits.
        let cfg = GpuConfig {
            num_sms: 3,
            warp_size: 8,
            blocks: 4,
            threads_per_block: 16,
            barrier: crate::BarrierKind::SenseReversing,
        };
        let total_threads = cfg.total_threads() as u64;
        let warp_size = cfg.warp_size as u64;
        let stats = VirtualGpu::new(cfg).launch(&Speculator);
        assert_eq!(
            stats.active_threads + stats.idle_threads,
            stats.warps * warp_size,
            "every lane of every warp execution is exactly one of active/idle"
        );
        assert_eq!(
            stats.aborts + stats.commits,
            total_threads,
            "each thread launched exactly one speculative activity"
        );
    }

    fn metered_gpu(cfg: GpuConfig) -> (VirtualGpu, Arc<morph_metrics::MetricsRegistry>) {
        let mut gpu = VirtualGpu::new(cfg);
        let registry = Arc::new(morph_metrics::MetricsRegistry::new());
        gpu.set_metrics(MetricsHub::new(registry.clone()));
        (gpu, registry)
    }

    /// Copies `src[f(tid)]` to `dst[f(tid)]` through the metered access
    /// path; `stride` plants the coalescing behaviour.
    struct StridedCopy<'a> {
        src: &'a crate::mem::SharedSlice<u64>,
        dst: &'a crate::mem::SharedSlice<u64>,
        stride: usize,
    }
    impl Kernel for StridedCopy<'_> {
        fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            let i = (ctx.tid * self.stride) % self.src.len();
            let v = ctx.global_load(self.src, i);
            ctx.global_store(self.dst, i, v);
            true
        }
    }

    fn copy_stats(stride: usize) -> LaunchStats {
        let cfg = GpuConfig {
            num_sms: 1,
            warp_size: 8,
            blocks: 1,
            threads_per_block: 8,
            barrier: crate::BarrierKind::SenseReversing,
        };
        let src = crate::mem::SharedSlice::<u64>::from_vec((0..64).collect());
        let dst = crate::mem::SharedSlice::<u64>::new(64, 0);
        let (gpu, _reg) = metered_gpu(cfg);
        gpu.launch(&StridedCopy {
            src: &src,
            dst: &dst,
            stride,
        })
    }

    #[test]
    fn planted_stride_degrades_coalescing() {
        // Acceptance gate: the cost model must discriminate. A warp of 8
        // lanes reading consecutive u64s touches 2 segments (64 bytes);
        // with stride 8 every lane is 64 bytes apart and pays its own
        // segment. Same access counts, different transaction counts.
        let contiguous = copy_stats(1);
        let strided = copy_stats(8);
        assert_eq!(contiguous.gmem_accesses, 16, "8 loads + 8 stores");
        assert_eq!(contiguous.gmem_accesses, strided.gmem_accesses);
        // 64 contiguous bytes span 2 segments when aligned, 3 when the heap
        // buffer straddles a boundary — per array.
        assert!(
            (4..=6).contains(&contiguous.gmem_transactions),
            "contiguous warp should need 2-3 segments per array, got {}",
            contiguous.gmem_transactions
        );
        assert_eq!(strided.gmem_transactions, 16, "one segment per access");
        assert!(
            contiguous.coalescing_factor() > 2.5
                && strided.coalescing_factor() < 1.1,
            "coalescing factor must separate the planted pathologies: \
             contiguous {} vs strided {}",
            contiguous.coalescing_factor(),
            strided.coalescing_factor()
        );
    }

    /// Every lane increments either one shared bin (pathological) or its
    /// own bin (clean).
    struct ContendedCounter {
        bins: AtomicU32Slice,
        same_address: bool,
    }
    impl Kernel for ContendedCounter {
        fn run(&self, _phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
            let b = if self.same_address {
                0
            } else {
                ctx.tid % self.bins.len()
            };
            ctx.atomic_add_u32(self.bins.at(b), 1);
            true
        }
    }

    #[test]
    fn planted_same_address_atomics_raise_contention() {
        let cfg = GpuConfig {
            num_sms: 1,
            warp_size: 8,
            blocks: 2,
            threads_per_block: 8,
            barrier: crate::BarrierKind::SenseReversing,
        };
        let run = |same_address: bool| {
            let (gpu, _reg) = metered_gpu(cfg.clone());
            gpu.launch(&ContendedCounter {
                bins: AtomicU32Slice::new(16, 0),
                same_address,
            })
        };
        let hot = run(true);
        let spread = run(false);
        assert_eq!(hot.atomics, 16);
        assert_eq!(spread.atomics, 16);
        // 2 warps of 8 lanes hammering one address: 7 extra serialized
        // steps each. Distinct bins per lane: none.
        assert_eq!(hot.atomic_serial, 14);
        assert_eq!(spread.atomic_serial, 0);
    }

    #[test]
    fn cost_model_counters_are_conserved_and_published() {
        let cfg = GpuConfig {
            num_sms: 2,
            warp_size: 8,
            blocks: 4,
            threads_per_block: 16,
            barrier: crate::BarrierKind::SenseReversing,
        };
        let (gpu, registry) = metered_gpu(cfg);
        let stats = gpu.launch(&ContendedCounter {
            bins: AtomicU32Slice::new(8, 0),
            same_address: false,
        });

        // Structural invariants of the model.
        assert!(stats.gmem_transactions <= stats.gmem_accesses);
        assert!(stats.gmem_transactions > 0, "atomics are global accesses");
        assert!(stats.active_warps <= stats.warps);
        assert!(stats.occupancy() > 0.0 && stats.occupancy() <= 1.0);
        assert!(stats.coalescing_factor() >= 1.0);

        // The same totals must have landed in the live registry.
        let snap = registry.snapshot();
        let series = |name: &str| {
            snap.series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("series {name} not published"))
        };
        match &series("morph_gmem_accesses_total").value {
            morph_metrics::SampleValue::Counter(v) => assert_eq!(*v, stats.gmem_accesses),
            other => panic!("expected counter, got {other:?}"),
        }
        match &series("morph_gmem_transactions_total").value {
            morph_metrics::SampleValue::Counter(v) => {
                assert_eq!(*v, stats.gmem_transactions)
            }
            other => panic!("expected counter, got {other:?}"),
        }
        match &series("morph_launch_occupancy_pct").value {
            morph_metrics::SampleValue::Histogram(h) => {
                assert_eq!(h.count, 1, "one launch, one occupancy sample");
                assert_eq!(h.max, 100 * stats.active_warps / stats.warps);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn unobserved_launch_skips_the_cost_model() {
        // Zero-cost contract: with neither tracer nor metrics hub the tape
        // never exists, so metered accessors record nothing.
        let stats = VirtualGpu::new(GpuConfig::small()).launch(&ContendedCounter {
            bins: AtomicU32Slice::new(8, 0),
            same_address: true,
        });
        assert_eq!(stats.gmem_accesses, 0);
        assert_eq!(stats.gmem_transactions, 0);
        assert_eq!(stats.atomic_serial, 0);
        assert!(stats.atomics > 0, "plain atomic counting is unconditional");
        assert!(stats.active_warps > 0, "occupancy metering is unconditional");
    }

    #[test]
    fn traced_launch_emits_spans_that_sum_to_totals() {
        use morph_trace::RingSink;

        let mut gpu = VirtualGpu::new(GpuConfig::small());
        let sink = Arc::new(RingSink::new(1024));
        gpu.set_tracer(Tracer::new(sink.clone()));
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 3,
        };
        let stats = gpu.execute(&k);
        assert_eq!(stats.iterations, 3);

        let events = sink.events();
        let begins: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::LaunchBegin { .. }))
            .collect();
        assert_eq!(begins.len(), 1);
        match begins[0] {
            TraceEvent::LaunchBegin {
                blocks,
                threads_per_block,
                phases,
                ..
            } => {
                assert_eq!(*blocks, 4);
                assert_eq!(*threads_per_block, 8);
                assert_eq!(*phases, 1);
            }
            _ => unreachable!(),
        }

        // One span per (iteration, phase); deltas must sum back to the
        // launch totals for every counter except barriers (the final
        // decision barrier is crossed after the last span is cut).
        let mut summed = CountersSnapshot::default();
        let mut spans = 0;
        for e in &events {
            if let TraceEvent::PhaseSpan { delta, .. } = e {
                summed.add(delta);
                spans += 1;
            }
        }
        assert_eq!(spans, 3, "one span per iteration of a 1-phase kernel");
        let totals = stats.snapshot();
        assert_eq!(summed.active_threads, totals.active_threads);
        assert_eq!(summed.idle_threads, totals.idle_threads);
        assert_eq!(summed.warps, totals.warps);
        assert_eq!(summed.divergent_warps, totals.divergent_warps);
        assert_eq!(summed.atomics, totals.atomics);
        assert_eq!(summed.aborts, totals.aborts);
        assert_eq!(summed.commits, totals.commits);
        assert_eq!(summed.gmem_accesses, totals.gmem_accesses);
        assert_eq!(summed.gmem_transactions, totals.gmem_transactions);
        assert_eq!(summed.smem_accesses, totals.smem_accesses);
        assert_eq!(summed.smem_conflicts, totals.smem_conflicts);
        assert_eq!(summed.atomic_serial, totals.atomic_serial);
        assert_eq!(summed.active_warps, totals.active_warps);
        assert!(
            totals.gmem_accesses > 0,
            "a traced launch arms the cost model, and this kernel issues atomics"
        );

        match events.last().expect("stream not empty") {
            TraceEvent::LaunchEnd {
                iterations, totals, ..
            } => {
                assert_eq!(*iterations, 3);
                assert_eq!(totals.atomics, stats.atomics);
            }
            other => panic!("expected trailing LaunchEnd, got {other:?}"),
        }
    }

    #[test]
    fn profiler_only_launch_fills_the_phase_profile() {
        use morph_trace::{PhaseProfiler, ProfilerScope};

        // A profiler with no tracer must still arm the tape and attribute
        // per-phase cycles — the introspection plane samples continuously
        // even when full event streaming is off.
        let mut gpu = VirtualGpu::new(GpuConfig::small());
        let profiler = Arc::new(PhaseProfiler::new());
        gpu.set_profiler(Some(ProfilerScope::new(Arc::clone(&profiler), "dmr")));
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 3,
        };
        let stats = gpu.execute(&k);
        assert_eq!(stats.iterations, 3);
        assert!(
            stats.gmem_accesses > 0,
            "a profiled launch arms the cost model"
        );
        assert!(!profiler.is_empty());
        let folded = profiler.to_folded();
        assert!(folded.contains("dmr;it0;phase0 "), "{folded}");
        assert!(folded.contains("dmr;it2-3;phase0 "), "{folded}");
        // Dropping the scope and launching again records nothing new.
        gpu.set_profiler(None);
        let before = folded.len();
        gpu.execute(&CountTo {
            total: AtomicU64::new(0),
            target: 2,
        });
        assert_eq!(profiler.to_folded().len(), before);
    }

    #[test]
    fn launch_ids_increment_per_gpu() {
        use morph_trace::RingSink;

        let mut gpu = VirtualGpu::new(GpuConfig::small());
        let sink = Arc::new(RingSink::new(64));
        gpu.set_tracer(Tracer::new(sink.clone()));
        let k = CountTo {
            total: AtomicU64::new(0),
            target: 1,
        };
        gpu.launch(&k);
        let k2 = CountTo {
            total: AtomicU64::new(0),
            target: 1,
        };
        gpu.launch(&k2);
        let ids: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::LaunchBegin { launch, .. } => Some(*launch),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn geometry_can_be_reconfigured() {
        let mut gpu = VirtualGpu::new(GpuConfig::small());
        gpu.set_geometry(2, 16);
        assert_eq!(gpu.config().total_threads(), 32);
        let k = Histogram {
            data: &[1, 2, 3],
            bins: AtomicU32Slice::new(4, 0),
        };
        let stats = gpu.launch(&k);
        assert_eq!(k.bins.to_vec().iter().sum::<u32>(), 3);
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.threads_per_block, 16);
    }
}
