//! Launch configuration for the virtual GPU.
//!
//! The paper tunes two knobs per algorithm (§7.4): the number of thread
//! blocks (`3×SM` to `50×SM`) and the number of threads per block (grown
//! adaptively over the first iterations). Both are plain fields here so the
//! adaptive-parallelism controller in `morph-core` can adjust them between
//! launches.

use std::num::NonZeroUsize;

/// Which software global-barrier implementation to use (paper §7.3,
/// "Barrier implementation").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BarrierKind {
    /// Every virtual thread performs an atomic RMW on one global counter and
    /// spins on it. The paper calls this "particularly inefficient on GPUs";
    /// its cost scales with the virtual-thread count.
    NaiveAtomic,
    /// Threads inside a block synchronise with `__syncthreads()` (free in
    /// this simulator: a block runs on one worker) and one representative
    /// per block performs the atomic RMW.
    Hierarchical,
    /// Xiao & Feng's atomic-free barrier: per-participant arrive/go flags
    /// written with release stores and read with acquire loads — no RMW at
    /// all. This is the paper's fastest variant (Fig. 8, row 3), augmented
    /// with the fences Fermi's incoherent L1 required.
    #[default]
    SenseReversing,
}

/// How a kernel distributes a range of work items over its virtual threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum WorkPartition {
    /// Thread `t` processes items `t, t+N, t+2N, …` (grid-stride loop).
    Strided,
    /// Thread `t` processes a contiguous chunk. Combined with the memory
    /// layout optimisation (§6.1) this forms the "pseudo-partitioning" the
    /// paper uses to reduce conflicts (§7.5).
    #[default]
    Chunked,
}

/// Virtual-GPU launch configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of host worker threads — the virtual streaming
    /// multiprocessors. Blocks are multiplexed over these round-robin.
    pub num_sms: usize,
    /// Virtual threads per warp. Warps execute in lockstep (sequentially on
    /// one worker) and are the unit of divergence accounting.
    pub warp_size: usize,
    /// Thread blocks per grid.
    pub blocks: usize,
    /// Virtual threads per block.
    pub threads_per_block: usize,
    /// Global-barrier implementation used between kernel phases.
    pub barrier: BarrierKind,
}

impl GpuConfig {
    /// Configuration sized for the current host: one SM per available core,
    /// `blocks_per_sm × SMs` blocks.
    pub fn detect(blocks_per_sm: usize, threads_per_block: usize) -> Self {
        let sms = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(4);
        Self {
            num_sms: sms,
            warp_size: 32,
            blocks: blocks_per_sm.max(1) * sms,
            threads_per_block: threads_per_block.max(1),
            barrier: BarrierKind::SenseReversing,
        }
    }

    /// A tiny deterministic configuration for unit tests and doctests.
    pub fn small() -> Self {
        Self {
            num_sms: 2,
            warp_size: 4,
            blocks: 4,
            threads_per_block: 8,
            barrier: BarrierKind::SenseReversing,
        }
    }

    /// Total number of virtual threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.blocks * self.threads_per_block
    }

    /// Replace the barrier implementation.
    pub fn with_barrier(mut self, kind: BarrierKind) -> Self {
        self.barrier = kind;
        self
    }

    /// Replace the launch geometry.
    ///
    /// A zero block count or zero threads-per-block describes a grid that
    /// can never execute a kernel; it is always a caller bug (an adaptive
    /// schedule gone wrong, an uninitialised option struct). Debug builds
    /// trap on it; release builds clamp to 1 so a degenerate configuration
    /// degrades to serial execution instead of dividing by zero deeper in
    /// the engine.
    pub fn with_geometry(mut self, blocks: usize, threads_per_block: usize) -> Self {
        debug_assert!(
            blocks > 0,
            "launch geometry with zero blocks: the grid would never run"
        );
        debug_assert!(
            threads_per_block > 0,
            "launch geometry with zero threads per block: the grid would never run"
        );
        self.blocks = blocks.max(1);
        self.threads_per_block = threads_per_block.max(1);
        self
    }

    /// Replace the number of virtual SMs (host workers).
    ///
    /// Zero SMs would leave every block unscheduled; like
    /// [`GpuConfig::with_geometry`], debug builds trap and release builds
    /// clamp to one worker.
    pub fn with_sms(mut self, sms: usize) -> Self {
        debug_assert!(sms > 0, "a GPU with zero SMs cannot schedule any block");
        self.num_sms = sms.max(1);
        self
    }

    /// Number of workers that will actually run: at most one per block.
    pub fn effective_workers(&self) -> usize {
        self.num_sms.min(self.blocks).max(1)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::detect(4, 128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_produces_sane_config() {
        let c = GpuConfig::detect(3, 64);
        assert!(c.num_sms >= 1);
        assert_eq!(c.blocks, 3 * c.num_sms);
        assert_eq!(c.threads_per_block, 64);
        assert_eq!(c.total_threads(), c.blocks * 64);
    }

    /// Release builds clamp degenerate geometry to a 1×1 serial grid
    /// instead of propagating a zero into the engine's divisions.
    #[test]
    #[cfg(not(debug_assertions))]
    fn zero_guards_clamp_in_release() {
        let c = GpuConfig::small().with_geometry(0, 0).with_sms(0);
        assert_eq!(c.blocks, 1);
        assert_eq!(c.threads_per_block, 1);
        assert_eq!(c.num_sms, 1);
        assert_eq!(c.effective_workers(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "zero blocks")]
    fn zero_blocks_trap_in_debug() {
        let _ = GpuConfig::small().with_geometry(0, 8);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "zero threads per block")]
    fn zero_tpb_traps_in_debug() {
        let _ = GpuConfig::small().with_geometry(4, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "zero SMs")]
    fn zero_sms_traps_in_debug() {
        let _ = GpuConfig::small().with_sms(0);
    }

    /// Nonzero inputs pass through both guards untouched.
    #[test]
    fn nonzero_geometry_is_preserved() {
        let c = GpuConfig::small().with_geometry(7, 3).with_sms(5);
        assert_eq!((c.blocks, c.threads_per_block, c.num_sms), (7, 3, 5));
    }

    #[test]
    fn effective_workers_capped_by_blocks() {
        let c = GpuConfig::small().with_sms(16).with_geometry(3, 8);
        assert_eq!(c.effective_workers(), 3);
    }
}
