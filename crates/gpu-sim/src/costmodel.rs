//! The hardware cost model: per-warp memory-system scoring.
//!
//! Real GPUs lose performance to three memory-system effects the plain
//! counters cannot see: uncoalesced global accesses (each 32-byte
//! segment touched by a warp is one transaction), shared-memory bank
//! conflicts (banks are word-interleaved, `warp_size` of them; two
//! lanes hitting *different words in the same bank* serialize), and
//! same-address atomic contention (hardware serializes RMWs to one
//! location). The paper's waste-reduction rules (§7) are all aimed at
//! these effects, so the simulator meters them.
//!
//! Mechanism: while a warp runs, instrumented access paths append plain
//! addresses onto a [`WarpTape`]; when the warp's lanes finish a phase
//! the engine drains the tape and scores it. The tape lives behind a
//! `RefCell` so `&self` paths ([`crate::BlockLocal::with`] takes
//! `&ThreadCtx`) can record without widening any public signature. A
//! worker runs its warps strictly sequentially, so the tape is never
//! aliased across warps.
//!
//! The tape exists only when a tracer or metrics registry is attached
//! to the launch — the zero-cost-when-disabled contract of DESIGN.md §8
//! — so unobserved runs never touch it.

use std::cell::RefCell;

/// Global-memory transaction granularity, bytes. Modern GPUs fetch
/// 32-byte sectors; a fully coalesced warp of 32 four-byte lanes needs
/// 4 transactions, a fully scattered one needs 32.
pub const SEGMENT_BYTES: usize = 32;

#[derive(Default)]
struct TapeInner {
    /// Byte addresses of plain global loads/stores.
    gmem: Vec<usize>,
    /// Byte addresses of atomic RMWs (also global accesses).
    atomics: Vec<usize>,
    /// Word indices of shared-memory (`BlockLocal`) accesses.
    smem: Vec<usize>,
}

/// Per-worker recording surface for one warp's memory accesses.
pub(crate) struct WarpTape {
    inner: RefCell<TapeInner>,
}

/// The scored summary of one warp's phase execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WarpScore {
    /// Global accesses issued (plain + atomic).
    pub gmem_accesses: u64,
    /// Distinct 32-byte segments those accesses touched.
    pub gmem_transactions: u64,
    /// Shared-memory accesses issued.
    pub smem_accesses: u64,
    /// Serialization cycles beyond the first access per bank.
    pub smem_conflicts: u64,
    /// Atomic RMWs issued.
    pub atomic_ops: u64,
    /// Serialization steps beyond the first RMW per address.
    pub atomic_serial: u64,
}

impl WarpTape {
    pub(crate) fn new() -> Self {
        WarpTape {
            inner: RefCell::new(TapeInner::default()),
        }
    }

    #[inline]
    pub(crate) fn record_global(&self, addr: usize) {
        self.inner.borrow_mut().gmem.push(addr);
    }

    #[inline]
    pub(crate) fn record_atomic(&self, addr: usize) {
        self.inner.borrow_mut().atomics.push(addr);
    }

    #[inline]
    pub(crate) fn record_smem(&self, word: usize) {
        self.inner.borrow_mut().smem.push(word);
    }

    /// Expose the tape's raw global and atomic address lists (in
    /// recording order) without draining them. The lens attribution
    /// hook runs this *before* [`WarpTape::score_and_clear`], which
    /// sorts the atomics in place and clears everything.
    pub(crate) fn with_contents(&self, f: impl FnOnce(&[usize], &[usize])) {
        let t = self.inner.borrow();
        f(&t.gmem, &t.atomics);
    }

    /// Drain the tape and score it for one warp.
    pub(crate) fn score_and_clear(&self, warp_size: usize) -> WarpScore {
        let mut t = self.inner.borrow_mut();
        let mut score = WarpScore {
            gmem_accesses: (t.gmem.len() + t.atomics.len()) as u64,
            smem_accesses: t.smem.len() as u64,
            atomic_ops: t.atomics.len() as u64,
            ..WarpScore::default()
        };

        // Coalescing: distinct 32-byte segments across plain and atomic
        // global accesses. The tapes are warp-sized, so sort+dedup on a
        // scratch Vec beats hashing.
        if score.gmem_accesses > 0 {
            let mut segments: Vec<usize> = t
                .gmem
                .iter()
                .chain(t.atomics.iter())
                .map(|a| a / SEGMENT_BYTES)
                .collect();
            segments.sort_unstable();
            segments.dedup();
            score.gmem_transactions = segments.len() as u64;
        }

        // Bank conflicts: same word from many lanes is a broadcast (free);
        // distinct words in one bank serialize, one extra cycle each.
        if !t.smem.is_empty() {
            let banks = warp_size.max(1);
            let mut words: Vec<usize> = t.smem.clone();
            words.sort_unstable();
            words.dedup();
            let mut per_bank = vec![0u64; banks];
            for w in &words {
                per_bank[w % banks] += 1;
            }
            score.smem_conflicts = per_bank.iter().map(|&n| n.saturating_sub(1)).sum();
        }

        // Atomic serialization: each additional RMW to the same address
        // is one extra serialized step.
        if !t.atomics.is_empty() {
            t.atomics.sort_unstable();
            let distinct = {
                let mut d = 1u64;
                for pair in t.atomics.windows(2) {
                    if pair[0] != pair[1] {
                        d += 1;
                    }
                }
                d
            };
            score.atomic_serial = t.atomics.len() as u64 - distinct;
        }

        t.gmem.clear();
        t.atomics.clear();
        t.smem.clear();
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_warp_needs_few_transactions() {
        let tape = WarpTape::new();
        // 8 lanes load consecutive u32s starting at a segment boundary:
        // 32 bytes = exactly one segment.
        for lane in 0..8usize {
            tape.record_global(0x1000 + lane * 4);
        }
        let s = tape.score_and_clear(8);
        assert_eq!(s.gmem_accesses, 8);
        assert_eq!(s.gmem_transactions, 1);
    }

    #[test]
    fn strided_warp_pays_one_transaction_per_lane() {
        let tape = WarpTape::new();
        for lane in 0..8usize {
            tape.record_global(0x1000 + lane * 256);
        }
        let s = tape.score_and_clear(8);
        assert_eq!(s.gmem_accesses, 8);
        assert_eq!(s.gmem_transactions, 8);
    }

    #[test]
    fn same_word_smem_is_a_broadcast() {
        let tape = WarpTape::new();
        for _ in 0..8 {
            tape.record_smem(42);
        }
        let s = tape.score_and_clear(8);
        assert_eq!(s.smem_accesses, 8);
        assert_eq!(s.smem_conflicts, 0);
    }

    #[test]
    fn same_bank_distinct_words_conflict() {
        let tape = WarpTape::new();
        // Words 0, 8, 16, 24 with 8 banks: all bank 0, four distinct
        // words → 3 extra cycles.
        for i in 0..4usize {
            tape.record_smem(i * 8);
        }
        let s = tape.score_and_clear(8);
        assert_eq!(s.smem_conflicts, 3);
        // Consecutive words spread across banks → conflict-free.
        let tape = WarpTape::new();
        for w in 0..8usize {
            tape.record_smem(w);
        }
        assert_eq!(tape.score_and_clear(8).smem_conflicts, 0);
    }

    #[test]
    fn same_address_atomics_serialize() {
        let tape = WarpTape::new();
        for _ in 0..8 {
            tape.record_atomic(0x2000);
        }
        let s = tape.score_and_clear(8);
        assert_eq!(s.atomic_ops, 8);
        assert_eq!(s.atomic_serial, 7);
        // Atomics are global accesses too: one segment here.
        assert_eq!(s.gmem_accesses, 8);
        assert_eq!(s.gmem_transactions, 1);

        let tape = WarpTape::new();
        for lane in 0..8usize {
            tape.record_atomic(0x2000 + lane * 64);
        }
        assert_eq!(tape.score_and_clear(8).atomic_serial, 0);
    }

    #[test]
    fn scoring_drains_the_tape() {
        let tape = WarpTape::new();
        tape.record_global(0);
        tape.record_smem(1);
        tape.record_atomic(8);
        let first = tape.score_and_clear(8);
        assert!(first.gmem_accesses > 0);
        let empty = tape.score_and_clear(8);
        assert_eq!(empty, WarpScore::default());
    }
}
