//! Software global barriers (paper §7.3, "Barrier implementation").
//!
//! Current GPUs have no hardware grid-wide barrier, so the paper implements
//! one in user code and compares three designs. We reproduce all three. The
//! barrier participants here are the host workers (the virtual SMs); the
//! *cost model* of the naive and hierarchical designs is preserved by
//! issuing one real atomic RMW per virtual thread (naive) or per block
//! (hierarchical) on a shared contended counter before arrival, so the
//! relative cost of the three designs scales exactly as on the GPU: with
//! the thread count, the block count, and the participant count
//! respectively.

use crate::config::BarrierKind;
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Panic message raised by workers that die because a *sibling* poisoned
/// the barrier. The engine uses it to tell secondary casualties apart from
/// the primary fault.
pub(crate) const BARRIER_POISON_MSG: &str = "virtual GPU barrier poisoned: a worker panicked";

/// Panic message raised by the barrier watchdog when a participant fails to
/// arrive within the configured timeout. The raiser poisons the barrier
/// first, so every other spinner dies with [`BARRIER_POISON_MSG`].
pub(crate) const BARRIER_TIMEOUT_MSG: &str =
    "virtual GPU barrier watchdog: a participant failed to arrive in time";

/// A reusable grid-wide barrier for a fixed number of participants.
pub trait GlobalBarrier: Sync + Send {
    /// Block until all participants have arrived.
    ///
    /// `vthreads` / `vblocks` are the numbers of virtual threads and blocks
    /// the calling worker simulates; the naive and hierarchical designs pay
    /// one atomic RMW per virtual thread / block respectively.
    ///
    /// # Panics
    /// Panics if the barrier has been [poisoned](GlobalBarrier::poison) by
    /// a panic in another worker.
    fn wait(&self, participant: usize, vthreads: usize, vblocks: usize);

    /// Mark the barrier poisoned so spinning workers fail fast instead of
    /// hanging when a sibling worker panicked.
    fn poison(&self);

    /// Atomic read-modify-write operations this barrier has issued — the
    /// traffic the paper's atomic-free design (Fig. 8, row 3) eliminates.
    fn rmw_traffic(&self) -> u64;
}

/// Construct the barrier implementation selected by `kind`.
///
/// With a `watchdog` timeout, a participant that spins longer than the
/// timeout poisons the barrier and panics with `BARRIER_TIMEOUT_MSG`
/// instead of hanging forever on a wedged sibling.
pub fn make_barrier(
    kind: BarrierKind,
    participants: usize,
    watchdog: Option<Duration>,
) -> Box<dyn GlobalBarrier> {
    match kind {
        BarrierKind::NaiveAtomic => Box::new(CentralBarrier::new(
            participants,
            TrafficModel::PerThread,
            watchdog,
        )),
        BarrierKind::Hierarchical => Box::new(CentralBarrier::new(
            participants,
            TrafficModel::PerBlock,
            watchdog,
        )),
        BarrierKind::SenseReversing => Box::new(SenseBarrier::new(participants, watchdog)),
    }
}

fn spin_wait(mut check: impl FnMut() -> bool, poisoned: &AtomicBool, watchdog: Option<Duration>) {
    let deadline = watchdog.map(|t| Instant::now() + t);
    let mut spins = 0u32;
    while !check() {
        if poisoned.load(Ordering::Relaxed) {
            panic!("{}", BARRIER_POISON_MSG);
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            // More workers than cores must not livelock the spinners. Once
            // we are yielding anyway, the clock check is cheap.
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    // Poison first so siblings fail fast with the generic
                    // poison message; only this worker reports the stall.
                    poisoned.store(true, Ordering::Relaxed);
                    panic!("{}", BARRIER_TIMEOUT_MSG);
                }
            }
            std::thread::yield_now();
        }
    }
}

#[derive(Clone, Copy)]
enum TrafficModel {
    PerThread,
    PerBlock,
}

/// Counter-based barrier: every arrival is an atomic RMW on one shared
/// counter, plus simulated per-thread or per-block RMW traffic.
struct CentralBarrier {
    participants: usize,
    count: CachePadded<AtomicUsize>,
    generation: CachePadded<AtomicUsize>,
    /// Contended location absorbing the simulated per-thread/per-block
    /// atomic traffic of the naive/hierarchical designs.
    traffic: CachePadded<AtomicU64>,
    model: TrafficModel,
    poisoned: AtomicBool,
    watchdog: Option<Duration>,
}

impl CentralBarrier {
    fn new(participants: usize, model: TrafficModel, watchdog: Option<Duration>) -> Self {
        Self {
            participants,
            count: CachePadded::new(AtomicUsize::new(0)),
            generation: CachePadded::new(AtomicUsize::new(0)),
            traffic: CachePadded::new(AtomicU64::new(0)),
            model,
            poisoned: AtomicBool::new(false),
            watchdog,
        }
    }
}

impl GlobalBarrier for CentralBarrier {
    fn wait(&self, _participant: usize, vthreads: usize, vblocks: usize) {
        if self.participants == 1 {
            return;
        }
        // Simulated arrival traffic: the naive design has *every virtual
        // thread* decrement the counter; the hierarchical design has one
        // representative per block do so (the intra-block syncthreads is
        // free here because a block runs on a single worker).
        let extra = match self.model {
            TrafficModel::PerThread => vthreads.saturating_sub(1),
            TrafficModel::PerBlock => vblocks.saturating_sub(1),
        };
        for _ in 0..extra {
            self.traffic.fetch_add(1, Ordering::AcqRel);
        }
        self.traffic.fetch_add(1, Ordering::Relaxed); // the arrival RMW itself
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            self.count.store(0, Ordering::Relaxed);
            self.generation.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            spin_wait(
                || self.generation.load(Ordering::Acquire) != gen,
                &self.poisoned,
                self.watchdog,
            );
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    fn rmw_traffic(&self) -> u64 {
        self.traffic.load(Ordering::Acquire)
    }
}

/// Xiao–Feng style atomic-free barrier: epoch-stamped arrive flags written
/// with release stores, a designated master that observes them with acquire
/// loads and publishes a `go` epoch. No read-modify-write operations at all
/// (paper Fig. 8, row 3: "atomic-free global barrier").
struct SenseBarrier {
    participants: usize,
    arrive: Vec<CachePadded<AtomicU64>>,
    go: CachePadded<AtomicU64>,
    poisoned: AtomicBool,
    watchdog: Option<Duration>,
}

impl SenseBarrier {
    fn new(participants: usize, watchdog: Option<Duration>) -> Self {
        Self {
            participants,
            arrive: (0..participants)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            go: CachePadded::new(AtomicU64::new(0)),
            poisoned: AtomicBool::new(false),
            watchdog,
        }
    }
}

impl GlobalBarrier for SenseBarrier {
    fn wait(&self, participant: usize, _vthreads: usize, _vblocks: usize) {
        if self.participants == 1 {
            return;
        }
        let epoch = self.arrive[participant].load(Ordering::Relaxed) + 1;
        self.arrive[participant].store(epoch, Ordering::Release);
        if participant == 0 {
            for flag in &self.arrive[1..] {
                spin_wait(
                    || flag.load(Ordering::Acquire) >= epoch,
                    &self.poisoned,
                    self.watchdog,
                );
            }
            self.go.store(epoch, Ordering::Release);
        } else {
            spin_wait(
                || self.go.load(Ordering::Acquire) >= epoch,
                &self.poisoned,
                self.watchdog,
            );
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    fn rmw_traffic(&self) -> u64 {
        0 // loads and stores only — the whole point
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    /// Stress one barrier kind: W workers each increment a shared epoch
    /// array slot, then barrier, then verify every other worker has
    /// reached the same round. Any barrier bug shows up as a torn round.
    fn stress(kind: BarrierKind, workers: usize, rounds: u64) {
        let barrier = make_barrier(kind, workers, None);
        let slots: Vec<Counter> = (0..workers).map(|_| Counter::new(0)).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let barrier = &barrier;
                let slots = &slots;
                s.spawn(move || {
                    for r in 1..=rounds {
                        slots[w].store(r, Ordering::Release);
                        barrier.wait(w, 7, 3);
                        for q in slots {
                            assert!(q.load(Ordering::Acquire) >= r, "barrier leaked round {r}");
                        }
                        barrier.wait(w, 7, 3);
                    }
                });
            }
        });
    }

    #[test]
    fn naive_atomic_barrier_is_correct() {
        stress(BarrierKind::NaiveAtomic, 4, 200);
    }

    #[test]
    fn hierarchical_barrier_is_correct() {
        stress(BarrierKind::Hierarchical, 4, 200);
    }

    #[test]
    fn sense_reversing_barrier_is_correct() {
        stress(BarrierKind::SenseReversing, 4, 200);
    }

    #[test]
    fn sense_reversing_many_workers() {
        stress(BarrierKind::SenseReversing, 16, 50);
    }

    #[test]
    fn single_participant_never_blocks() {
        for kind in [
            BarrierKind::NaiveAtomic,
            BarrierKind::Hierarchical,
            BarrierKind::SenseReversing,
        ] {
            let b = make_barrier(kind, 1, None);
            for _ in 0..10 {
                b.wait(0, 1000, 10);
            }
        }
    }

    #[test]
    fn rmw_traffic_reflects_design() {
        for (kind, expect_rmws) in [
            (BarrierKind::NaiveAtomic, true),
            (BarrierKind::Hierarchical, true),
            (BarrierKind::SenseReversing, false),
        ] {
            let b = make_barrier(kind, 2, None);
            std::thread::scope(|s| {
                for w in 0..2 {
                    let b = &b;
                    s.spawn(move || {
                        for _ in 0..10 {
                            b.wait(w, 100, 4);
                        }
                    });
                }
            });
            assert_eq!(b.rmw_traffic() > 0, expect_rmws, "{kind:?}");
            if kind == BarrierKind::NaiveAtomic {
                // One RMW per virtual thread per wait, plus arrivals.
                assert!(b.rmw_traffic() >= 2 * 10 * 99, "{}", b.rmw_traffic());
            }
        }
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poisoned_barrier_panics_spinners() {
        let b = make_barrier(BarrierKind::SenseReversing, 2, None);
        b.poison();
        // Participant 1 spins on `go`, which will never advance.
        b.wait(1, 1, 1);
    }

    #[test]
    fn watchdog_fires_on_missing_participant() {
        for kind in [
            BarrierKind::NaiveAtomic,
            BarrierKind::Hierarchical,
            BarrierKind::SenseReversing,
        ] {
            let b = make_barrier(kind, 2, Some(Duration::from_millis(20)));
            // Participant 1 never arrives; participant 0 must not hang.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b.wait(0, 1, 1);
            }))
            .expect_err("watchdog should have fired");
            let msg = caught
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert_eq!(msg, BARRIER_TIMEOUT_MSG, "{kind:?}");
        }
    }
}
