//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between a job owner
//! (a scheduler, a CLI signal handler, a test) and the host loop driving a
//! [`crate::VirtualGpu`]. Cancellation is *cooperative*: raising the token
//! never interrupts a launch mid-kernel — the recovering driver in
//! `morph-core` observes it at the next host-action boundary (between
//! launches) and unwinds with a structured error, leaving device state
//! quiescent. That is exactly the granularity a multi-tenant serving layer
//! needs: a cancelled job releases its device slot at the next iteration
//! boundary without poisoning the simulator.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning shares the flag; the default token
/// is never cancelled (and allocates nothing observable beyond one `Arc`).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the flag. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has [`CancelToken::cancel`] been called (on this token or any
    /// clone)?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Do these two handles share one flag?
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        assert!(t.same_token(&c));
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert!(!a.same_token(&b));
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
