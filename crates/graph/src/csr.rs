//! Compressed sparse row graphs (paper §6).

use crate::{NodeId, Weight};

/// A weighted graph in CSR form. Directed by construction; undirected
/// graphs store each edge in both directions (as the paper does for MST
/// and SP factor graphs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    /// `row[n]..row[n+1]` indexes the edges of node `n`. Length = nodes+1.
    row: Vec<u32>,
    /// Edge targets.
    dst: Vec<NodeId>,
    /// Edge weights (parallel to `dst`).
    weight: Vec<Weight>,
}

impl Csr {
    /// Build from raw parts. Panics if the parts are inconsistent.
    pub fn from_parts(row: Vec<u32>, dst: Vec<NodeId>, weight: Vec<Weight>) -> Self {
        assert!(!row.is_empty(), "row offsets must contain at least [0]");
        assert_eq!(row[0], 0);
        assert_eq!(*row.last().unwrap() as usize, dst.len());
        assert_eq!(dst.len(), weight.len());
        debug_assert!(row.windows(2).all(|w| w[0] <= w[1]), "row offsets must be sorted");
        let n = row.len() - 1;
        debug_assert!(dst.iter().all(|&d| (d as usize) < n), "edge target out of range");
        Self { row, dst, weight }
    }

    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Self {
            row: vec![0; n + 1],
            dst: Vec::new(),
            weight: Vec::new(),
        }
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.row.len() - 1
    }

    /// Number of *directed* edges stored (an undirected graph reports 2×
    /// its edge count).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.dst.len()
    }

    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        let n = n as usize;
        (self.row[n + 1] - self.row[n]) as usize
    }

    /// Edge-index range of node `n`'s adjacency.
    #[inline]
    pub fn edge_range(&self, n: NodeId) -> std::ops::Range<usize> {
        let n = n as usize;
        self.row[n] as usize..self.row[n + 1] as usize
    }

    /// Neighbors of `n`.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.dst[self.edge_range(n)]
    }

    /// Weights parallel to [`neighbors`](Self::neighbors).
    #[inline]
    pub fn weights(&self, n: NodeId) -> &[Weight] {
        &self.weight[self.edge_range(n)]
    }

    /// `(neighbor, weight)` pairs of node `n`.
    #[inline]
    pub fn edges(&self, n: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let r = self.edge_range(n);
        self.dst[r.clone()].iter().copied().zip(self.weight[r].iter().copied())
    }

    /// Target of edge `e` (global edge index).
    #[inline]
    pub fn edge_dst(&self, e: usize) -> NodeId {
        self.dst[e]
    }

    /// Weight of edge `e` (global edge index).
    #[inline]
    pub fn edge_weight(&self, e: usize) -> Weight {
        self.weight[e]
    }

    /// Iterate all directed edges as `(src, dst, weight)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |s| {
            self.edges(s).map(move |(d, w)| (s, d, w))
        })
    }

    /// Unique undirected edges `(u, v, w)` with `u < v`. Assumes the graph
    /// stores both directions of every edge.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.all_edges().filter(|&(s, d, _)| s < d)
    }

    /// Total weight over unique undirected edges.
    pub fn total_undirected_weight(&self) -> u64 {
        self.undirected_edges().map(|(_, _, w)| w as u64).sum()
    }

    /// Sum of degrees divided by node count.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Check structural invariants (for tests and debug builds).
    pub fn validate(&self) -> Result<(), String> {
        if self.row[0] != 0 {
            return Err("row[0] != 0".into());
        }
        if *self.row.last().unwrap() as usize != self.dst.len() {
            return Err("last row offset != edge count".into());
        }
        if !self.row.windows(2).all(|w| w[0] <= w[1]) {
            return Err("row offsets not monotone".into());
        }
        let n = self.num_nodes() as NodeId;
        if let Some(&bad) = self.dst.iter().find(|&&d| d >= n) {
            return Err(format!("edge target {bad} out of range (n={n})"));
        }
        if self.dst.len() != self.weight.len() {
            return Err("dst/weight length mismatch".into());
        }
        Ok(())
    }

    /// True if for every directed edge `(u,v,w)` the reverse `(v,u,w)`
    /// exists — i.e. the CSR is a valid undirected doubling.
    pub fn is_symmetric(&self) -> bool {
        use std::collections::HashMap;
        let mut fwd: HashMap<(NodeId, NodeId), Vec<Weight>> = HashMap::new();
        for (s, d, w) in self.all_edges() {
            fwd.entry((s, d)).or_default().push(w);
        }
        for (s, d, ws) in fwd.iter().map(|((s, d), ws)| (*s, *d, ws)) {
            let mut sorted = ws.clone();
            sorted.sort_unstable();
            match fwd.get(&(d, s)) {
                Some(rs) => {
                    let mut rsorted = rs.clone();
                    rsorted.sort_unstable();
                    if rsorted != sorted {
                        return false;
                    }
                }
                None => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    fn triangle() -> Csr {
        let mut b = CsrBuilder::new(3);
        b.add_undirected(0, 1, 5);
        b.add_undirected(1, 2, 7);
        b.add_undirected(0, 2, 9);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        let mut nb: Vec<_> = g.neighbors(0).to_vec();
        nb.sort_unstable();
        assert_eq!(nb, vec![1, 2]);
        assert_eq!(g.edges(1).count(), 2);
        assert!(g.validate().is_ok());
        assert!(g.is_symmetric());
        assert_eq!(g.total_undirected_weight(), 21);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn undirected_edges_unique() {
        let g = triangle();
        let e: Vec<_> = g.undirected_edges().collect();
        assert_eq!(e.len(), 3);
        assert!(e.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert!(g.validate().is_ok());
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_offsets() {
        Csr::from_parts(vec![0, 2], vec![1], vec![1]);
    }

    #[test]
    fn asymmetric_detected() {
        let mut b = CsrBuilder::new(2);
        b.add_directed(0, 1, 3);
        let g = b.build();
        assert!(!g.is_symmetric());
    }

    #[test]
    fn edge_global_index_accessors() {
        let g = triangle();
        let r = g.edge_range(0);
        for e in r {
            assert_eq!(g.edge_weight(e), {
                let d = g.edge_dst(e);
                if d == 1 { 5 } else { 9 }
            });
        }
    }
}
