//! Concurrent union-find (disjoint-set union).
//!
//! The improved Galois 2.1.5 MST baseline the paper describes in §8.4
//! "incorporates a fast union-find data structure that maintains groups of
//! nodes \[and\] keeps the graph unmodified". This is that structure: a
//! lock-free parent array with CAS linking and path halving. Roots are
//! canonicalised to the **minimum node id** of their set, matching the
//! paper's cycle-representative rule ("choosing the component with minimum
//! ID as a cycle representative", §5).

use std::sync::atomic::{AtomicU32, Ordering};

/// Lock-free disjoint-set union over `0..n`.
pub struct UnionFind {
    parent: Vec<AtomicU32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&self, x: u32) -> u32 {
        let mut x = x;
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp != p {
                // Path halving; failure is benign (another thread halved).
                let _ = self.parent[x as usize].compare_exchange(
                    p,
                    gp,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
            x = p;
        }
    }

    /// Merge the sets of `a` and `b`. The smaller root id wins (becomes the
    /// representative). Returns `true` if the sets were distinct.
    pub fn union(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return false;
            }
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            // Link the larger root under the smaller. CAS can fail if a
            // racer re-rooted `hi`; retry from fresh finds.
            if self.parent[hi as usize]
                .compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// True if `a` and `b` are currently in the same set. (Under concurrent
    /// unions the answer is a linearizable snapshot only if no union races
    /// with this call.)
    pub fn same(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // `ra` may be stale; it is current if still a root.
            if self.parent[ra as usize].load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Number of distinct sets (host-side; O(n)).
    pub fn num_sets(&self) -> usize {
        (0..self.parent.len() as u32).filter(|&x| self.find(x) == x).count()
    }

    /// Representative of every element (host-side snapshot).
    pub fn snapshot(&self) -> Vec<u32> {
        (0..self.parent.len() as u32).map(|x| self.find(x)).collect()
    }

    /// Overwrite the parent array from a [`snapshot`](Self::snapshot)
    /// (checkpoint resume). Quiescent use only — no concurrent unions.
    ///
    /// # Panics
    /// If `parents.len()` differs from this structure's size.
    pub fn restore(&self, parents: &[u32]) {
        assert_eq!(
            parents.len(),
            self.parent.len(),
            "union-find restore: size mismatch"
        );
        for (slot, &p) in self.parent.iter().zip(parents) {
            slot.store(p, Ordering::Release);
        }
    }
}

/// Plain sequential DSU used as a test oracle and by Kruskal's algorithm.
#[derive(Clone, Debug)]
pub struct SeqUnionFind {
    parent: Vec<u32>,
}

impl SeqUnionFind {
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    pub fn find(&mut self, x: u32) -> u32 {
        if self.parent[x as usize] == x {
            return x;
        }
        let r = self.find(self.parent[x as usize]);
        self.parent[x as usize] = r;
        r
    }

    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[hi as usize] = lo;
        true
    }

    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_semantics() {
        let uf = UnionFind::new(6);
        assert_eq!(uf.len(), 6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_sets(), 3); // {0,1,2,3}, {4}, {5}
        // Minimum-id canonicalisation.
        assert_eq!(uf.find(3), 0);
        assert_eq!(uf.find(5), 5);
    }

    #[test]
    fn concurrent_unions_form_one_component() {
        let n = 10_000;
        let uf = UnionFind::new(n);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let uf = &uf;
                s.spawn(move || {
                    // Each thread links a strided chain; together they
                    // connect everything to 0.
                    for i in (t..n - 1).step_by(8) {
                        uf.union(i as u32, i as u32 + 1);
                    }
                });
            }
        });
        assert_eq!(uf.num_sets(), 1);
        for x in 0..n as u32 {
            assert_eq!(uf.find(x), 0);
        }
    }

    #[test]
    fn concurrent_matches_sequential_oracle() {
        use rand::prelude::*;
        let n = 2000usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let pairs: Vec<(u32, u32)> = (0..5000)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();

        let mut seq = SeqUnionFind::new(n);
        for &(a, b) in &pairs {
            seq.union(a, b);
        }

        let par = UnionFind::new(n);
        std::thread::scope(|s| {
            for chunk in pairs.chunks(pairs.len() / 8 + 1) {
                let par = &par;
                s.spawn(move || {
                    for &(a, b) in chunk {
                        par.union(a, b);
                    }
                });
            }
        });

        // Same partition: pairwise-same relation must agree.
        for x in (0..n as u32).step_by(37) {
            for y in (0..n as u32).step_by(53) {
                assert_eq!(par.same(x, y), seq.same(x, y), "({x},{y})");
            }
        }
    }

    #[test]
    fn snapshot_is_consistent() {
        let uf = UnionFind::new(4);
        uf.union(2, 3);
        let snap = uf.snapshot();
        assert_eq!(snap, vec![0, 1, 2, 2]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(4, 5);
        let snap = uf.snapshot();
        let fresh = UnionFind::new(6);
        fresh.restore(&snap);
        for x in 0..6u32 {
            assert_eq!(fresh.find(x), uf.find(x));
        }
        assert_eq!(fresh.num_sets(), uf.num_sets());
        // Unions continue correctly after a restore.
        assert!(fresh.union(1, 5));
        assert!(fresh.same(0, 4));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Lock-free DSU used sequentially matches the naive oracle exactly
        /// (including union() return values).
        #[test]
        fn matches_oracle(ops in prop::collection::vec((0u32..50, 0u32..50), 0..200)) {
            let fast = UnionFind::new(50);
            let mut slow = SeqUnionFind::new(50);
            for &(a, b) in &ops {
                prop_assert_eq!(fast.union(a, b), slow.union(a, b));
            }
            for x in 0..50u32 {
                prop_assert_eq!(fast.find(x), slow.find(x));
            }
        }
    }
}
