//! Edge-list → CSR construction (counting sort over sources).

use crate::csr::Csr;
use crate::{NodeId, Weight};

/// Accumulates an edge list and builds a [`Csr`] in two passes.
#[derive(Clone, Debug, Default)]
pub struct CsrBuilder {
    nodes: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
}

impl CsrBuilder {
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            edges: Vec::new(),
        }
    }

    pub fn with_edge_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            nodes,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of directed edges accumulated so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Add one directed edge.
    pub fn add_directed(&mut self, src: NodeId, dst: NodeId, w: Weight) {
        debug_assert!((src as usize) < self.nodes && (dst as usize) < self.nodes);
        self.edges.push((src, dst, w));
    }

    /// Add an undirected edge (stored in both directions, per §6).
    pub fn add_undirected(&mut self, a: NodeId, b: NodeId, w: Weight) {
        self.add_directed(a, b, w);
        self.add_directed(b, a, w);
    }

    /// Build the CSR. Edges of a node appear in insertion order.
    pub fn build(self) -> Csr {
        let n = self.nodes;
        let m = self.edges.len();
        let mut row = vec![0u32; n + 1];
        for &(s, _, _) in &self.edges {
            row[s as usize + 1] += 1;
        }
        for i in 0..n {
            row[i + 1] += row[i];
        }
        let mut cursor = row.clone();
        let mut dst = vec![0 as NodeId; m];
        let mut weight = vec![0 as Weight; m];
        for &(s, d, w) in &self.edges {
            let at = cursor[s as usize] as usize;
            cursor[s as usize] += 1;
            dst[at] = d;
            weight[at] = w;
        }
        Csr::from_parts(row, dst, weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_insertion_order() {
        let mut b = CsrBuilder::with_edge_capacity(4, 4);
        b.add_directed(2, 0, 10);
        b.add_directed(2, 3, 11);
        b.add_directed(0, 1, 12);
        b.add_directed(2, 1, 13);
        assert_eq!(b.num_edges(), 4);
        assert_eq!(b.num_nodes(), 4);
        let g = b.build();
        assert_eq!(g.neighbors(2), &[0, 3, 1]);
        assert_eq!(g.weights(2), &[10, 11, 13]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.degree(1), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn empty_builder() {
        let g = CsrBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn undirected_doubles() {
        let mut b = CsrBuilder::new(2);
        b.add_undirected(0, 1, 4);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.is_symmetric());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// CSR construction preserves the multiset of edges.
        #[test]
        fn csr_preserves_edges(edges in prop::collection::vec((0u32..50, 0u32..50, 0u32..1000), 0..200)) {
            let mut b = CsrBuilder::new(50);
            for &(s, d, w) in &edges {
                b.add_directed(s, d, w);
            }
            let g = b.build();
            prop_assert!(g.validate().is_ok());
            let mut got: Vec<_> = g.all_edges().collect();
            let mut want = edges.clone();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        /// Degrees sum to the edge count; neighbor slices agree with ranges.
        #[test]
        fn degrees_consistent(edges in prop::collection::vec((0u32..20, 0u32..20), 0..100)) {
            let mut b = CsrBuilder::new(20);
            for &(s, d) in &edges {
                b.add_directed(s, d, 1);
            }
            let g = b.build();
            let total: usize = (0..20).map(|n| g.degree(n)).sum();
            prop_assert_eq!(total, edges.len());
            for n in 0..20u32 {
                prop_assert_eq!(g.neighbors(n).len(), g.degree(n));
                prop_assert_eq!(g.weights(n).len(), g.degree(n));
            }
        }
    }
}
