//! Memory-layout optimisation (paper §6.1).
//!
//! "Neighboring graph elements that are logically close to each other
//! should also be close to each other in memory to improve spatial
//! locality. We optimize the memory layout … by performing a scan over the
//! nodes that swaps indices of neighboring nodes in the graph with those of
//! neighboring nodes in memory."
//!
//! We implement the renumbering as a breadth-first scan (the standard
//! realisation of this idea, cf. Cuthill–McKee): node ids are reassigned in
//! BFS discovery order, so a node and its neighbors receive nearby indices.

use crate::csr::Csr;
use crate::NodeId;

/// Permutation mapping `old id → new id` that clusters neighbors, computed
/// by BFS from node 0 (restarting at the smallest unvisited node for
/// disconnected graphs).
pub fn bfs_permutation(g: &Csr) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut new_id = vec![NodeId::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut next = 0 as NodeId;
    for start in 0..n as NodeId {
        if new_id[start as usize] != NodeId::MAX {
            continue;
        }
        new_id[start as usize] = next;
        next += 1;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if new_id[v as usize] == NodeId::MAX {
                    new_id[v as usize] = next;
                    next += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    debug_assert_eq!(next as usize, n);
    new_id
}

/// Apply a permutation (`perm[old] = new`) producing an isomorphic CSR with
/// renumbered nodes. Each node's adjacency is emitted in ascending new-id
/// order of the source, preserving per-node edge order.
pub fn apply_permutation(g: &Csr, perm: &[NodeId]) -> Csr {
    let n = g.num_nodes();
    assert_eq!(perm.len(), n);
    let mut inverse = vec![0 as NodeId; n];
    for (old, &new) in perm.iter().enumerate() {
        inverse[new as usize] = old as NodeId;
    }
    let mut b = crate::builder::CsrBuilder::with_edge_capacity(n, g.num_edges());
    for new_src in 0..n as NodeId {
        let old_src = inverse[new_src as usize];
        for (old_dst, w) in g.edges(old_src) {
            b.add_directed(new_src, perm[old_dst as usize], w);
        }
    }
    b.build()
}

/// Renumber `g` for locality; returns the new graph and the permutation
/// (`perm[old] = new`) so callers can relabel satellite data.
pub fn reorder_for_locality(g: &Csr) -> (Csr, Vec<NodeId>) {
    let perm = bfs_permutation(g);
    (apply_permutation(g, &perm), perm)
}

/// Mean |src − dst| over all edges — the locality figure of merit the
/// optimisation improves. Lower is better.
pub fn edge_span(g: &Csr) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    let total: u64 = g.all_edges().map(|(s, d, _)| s.abs_diff(d) as u64).sum();
    total as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;
    use rand::prelude::*;

    fn random_ring_with_shuffled_ids(n: usize, seed: u64) -> Csr {
        // A ring, but with node ids randomly permuted so neighbors are far
        // apart in memory.
        let mut ids: Vec<u32> = (0..n as u32).collect();
        ids.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let mut b = CsrBuilder::new(n);
        for i in 0..n {
            b.add_undirected(ids[i], ids[(i + 1) % n], 1);
        }
        b.build()
    }

    #[test]
    fn permutation_is_a_bijection() {
        let g = random_ring_with_shuffled_ids(100, 7);
        let perm = bfs_permutation(&g);
        let mut seen = [false; 100];
        for &p in &perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    fn reorder_improves_edge_span_on_scrambled_ring() {
        let g = random_ring_with_shuffled_ids(1000, 3);
        let before = edge_span(&g);
        let (h, _) = reorder_for_locality(&g);
        let after = edge_span(&h);
        assert!(
            after < before / 4.0,
            "span should drop sharply: before={before}, after={after}"
        );
        // A ring renumbered by BFS has span ~1 except the seam.
        assert!(after < 3.0, "after={after}");
    }

    #[test]
    fn reordered_graph_is_isomorphic() {
        let g = random_ring_with_shuffled_ids(64, 11);
        let (h, perm) = reorder_for_locality(&g);
        assert_eq!(h.num_nodes(), g.num_nodes());
        assert_eq!(h.num_edges(), g.num_edges());
        // Every old edge maps to a new edge under perm.
        for (s, d, w) in g.all_edges() {
            let (ns, nd) = (perm[s as usize], perm[d as usize]);
            assert!(
                h.edges(ns).any(|(x, xw)| x == nd && xw == w),
                "edge ({s},{d}) lost"
            );
        }
        // Degrees are preserved.
        for v in 0..64u32 {
            assert_eq!(g.degree(v), h.degree(perm[v as usize]));
        }
    }

    #[test]
    fn disconnected_graphs_are_fully_numbered() {
        let mut b = CsrBuilder::new(6);
        b.add_undirected(0, 1, 1);
        b.add_undirected(4, 5, 1); // nodes 2,3 isolated
        let g = b.build();
        let perm = bfs_permutation(&g);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph_edge_span() {
        assert_eq!(edge_span(&Csr::empty(3)), 0.0);
    }
}
