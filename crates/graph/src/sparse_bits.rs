//! Bit-vector sets for points-to analysis.
//!
//! Two representations, matching the two solver families:
//!
//! * [`SparseBitSet`] — a sorted array of `(base, word)` pairs; the classic
//!   sparse bit vector used by CPU Andersen solvers. Single-threaded.
//! * [`AtomicBitmap`] — a dense 2-D bitmap of `AtomicU64` words (one row
//!   per pointer, one column block per 64 address-taken variables), the
//!   GPU-side representation. Rows can be updated by their owning thread
//!   and read concurrently by others — the monotone-staleness pattern the
//!   paper's pull-based PTA relies on (§6.4).

use std::sync::atomic::{AtomicU64, Ordering};

/// A sparse set of `u32` values stored as sorted `(base, 64-bit word)`
/// pairs, where `base = value / 64`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SparseBitSet {
    words: Vec<(u32, u64)>,
}

impl SparseBitSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&(_, w)| w == 0)
    }

    /// Number of elements (popcount over all words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|&(_, w)| w.count_ones() as usize).sum()
    }

    /// Insert `v`; returns `true` if it was newly added.
    pub fn insert(&mut self, v: u32) -> bool {
        let base = v / 64;
        let bit = 1u64 << (v % 64);
        match self.words.binary_search_by_key(&base, |&(b, _)| b) {
            Ok(i) => {
                let old = self.words[i].1;
                self.words[i].1 = old | bit;
                old & bit == 0
            }
            Err(i) => {
                self.words.insert(i, (base, bit));
                true
            }
        }
    }

    pub fn contains(&self, v: u32) -> bool {
        let base = v / 64;
        let bit = 1u64 << (v % 64);
        match self.words.binary_search_by_key(&base, |&(b, _)| b) {
            Ok(i) => self.words[i].1 & bit != 0,
            Err(_) => false,
        }
    }

    /// `self ∪= other`; returns `true` if `self` changed. Linear-merge —
    /// the hot operation of inclusion-based points-to analysis.
    pub fn union_with(&mut self, other: &SparseBitSet) -> bool {
        if other.words.is_empty() {
            return false;
        }
        let mut changed = false;
        let mut out = Vec::with_capacity(self.words.len() + other.words.len());
        let (mut i, mut j) = (0, 0);
        while i < self.words.len() && j < other.words.len() {
            let (sb, sw) = self.words[i];
            let (ob, ow) = other.words[j];
            match sb.cmp(&ob) {
                std::cmp::Ordering::Less => {
                    out.push((sb, sw));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if ow != 0 {
                        changed = true;
                    }
                    out.push((ob, ow));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if ow & !sw != 0 {
                        changed = true;
                    }
                    out.push((sb, sw | ow));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.words[i..]);
        for &(b, w) in &other.words[j..] {
            if w != 0 {
                changed = true;
            }
            out.push((b, w));
        }
        self.words = out;
        changed
    }

    /// Iterate elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().flat_map(|&(base, word)| {
            (0..64u32).filter(move |b| word & (1 << b) != 0).map(move |b| base * 64 + b)
        })
    }

    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

impl FromIterator<u32> for SparseBitSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = Self::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

/// Dense rows × (universe/64) columns of atomic 64-bit words.
///
/// Writers use `fetch_or`; readers take relaxed/acquire snapshots. All
/// operations are monotone (bits are only ever set), so stale reads are
/// safe — the precise property flow-insensitive PTA exploits (§6.4).
pub struct AtomicBitmap {
    rows: usize,
    words_per_row: usize,
    bits: Vec<AtomicU64>,
}

impl AtomicBitmap {
    /// `rows` sets over a universe of `universe` values.
    pub fn new(rows: usize, universe: usize) -> Self {
        let words_per_row = universe.div_ceil(64).max(1);
        Self {
            rows,
            words_per_row,
            bits: (0..rows * words_per_row).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    #[inline]
    fn word_index(&self, row: usize, v: u32) -> usize {
        let w = (v / 64) as usize;
        debug_assert!(w < self.words_per_row, "value {v} outside universe");
        row * self.words_per_row + w
    }

    /// Set bit `v` in `row`; returns `true` if newly set.
    #[inline]
    pub fn set(&self, row: usize, v: u32) -> bool {
        let bit = 1u64 << (v % 64);
        let prev = self.bits[self.word_index(row, v)].fetch_or(bit, Ordering::AcqRel);
        prev & bit == 0
    }

    #[inline]
    pub fn get(&self, row: usize, v: u32) -> bool {
        let bit = 1u64 << (v % 64);
        self.bits[self.word_index(row, v)].load(Ordering::Acquire) & bit != 0
    }

    /// Raw word access (for the pull kernel's word-parallel unions).
    #[inline]
    pub fn word(&self, row: usize, w: usize) -> u64 {
        self.bits[row * self.words_per_row + w].load(Ordering::Acquire)
    }

    /// Logical byte address of word `w` in `row` — the metering hook for
    /// the cost model. Kernels that walk rows word-by-word report each
    /// address via `ThreadCtx::gmem_addr` so bitmap traffic reaches the
    /// coalescing meter (the bitmap owns its storage, so these loads
    /// never pass through a metered `SharedSlice`). The address is the
    /// structure-relative offset plus a fixed "device" base — never a
    /// host pointer, whose run-to-run allocator jitter would make the
    /// measured coalescing factor non-reproducible.
    #[inline]
    pub fn word_addr(&self, row: usize, w: usize) -> usize {
        Self::DEV_BASE + (row * self.words_per_row + w) * 8
    }

    /// Base of the bitmap's logical device window. Disjoint from
    /// `ChunkedAdjacency`'s arena window so transactions from the two
    /// structures never merge into one cache line.
    pub const DEV_BASE: usize = 0x1000_0000_0000;

    /// The byte extent `(base, len_bytes)` of the bitmap's logical device
    /// window — what a pipeline registers with `morph-lens` so word
    /// traffic attributes to this structure. Re-register after a regrow:
    /// the base is fixed but the length tracks the current word count.
    pub fn dev_extent(&self) -> (usize, usize) {
        (Self::DEV_BASE, self.rows * self.words_per_row * 8)
    }

    /// `row(dst) ∪= row(src)`; returns `true` if `dst` changed. Word-wise
    /// `fetch_or`, skipping zero source words.
    pub fn union_rows(&self, dst: usize, src: usize) -> bool {
        debug_assert_ne!(dst, src);
        let mut changed = false;
        for w in 0..self.words_per_row {
            let s = self.word(src, w);
            if s == 0 {
                continue;
            }
            let d = &self.bits[dst * self.words_per_row + w];
            if d.load(Ordering::Relaxed) & s != s {
                let prev = d.fetch_or(s, Ordering::AcqRel);
                if prev & s != s {
                    changed = true;
                }
            }
        }
        changed
    }

    /// Row-major flat copy of every word (checkpoint snapshot). Length is
    /// `rows() * words_per_row()`.
    pub fn words_snapshot(&self) -> Vec<u64> {
        self.bits.iter().map(|w| w.load(Ordering::Acquire)).collect()
    }

    /// Overwrite every word from a [`words_snapshot`](Self::words_snapshot)
    /// (checkpoint resume). Quiescent use only. Because all bitmap
    /// operations are monotone, resuming from a slightly stale snapshot is
    /// safe — re-running the deriving kernel converges to the same fixpoint.
    ///
    /// # Panics
    /// If `words.len()` differs from `rows() * words_per_row()`.
    pub fn restore_words(&self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.bits.len(),
            "bitmap restore: word count mismatch"
        );
        for (slot, &w) in self.bits.iter().zip(words) {
            slot.store(w, Ordering::Release);
        }
    }

    /// Popcount of `row`.
    pub fn count(&self, row: usize) -> usize {
        (0..self.words_per_row).map(|w| self.word(row, w).count_ones() as usize).sum()
    }

    /// Elements of `row` in ascending order (snapshot).
    pub fn row_to_vec(&self, row: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for w in 0..self.words_per_row {
            let mut word = self.word(row, w);
            while word != 0 {
                let b = word.trailing_zeros();
                out.push(w as u32 * 64 + b);
                word &= word - 1;
            }
        }
        out
    }

    /// Visit the elements of `row`.
    pub fn for_each(&self, row: usize, mut f: impl FnMut(u32)) {
        for w in 0..self.words_per_row {
            let mut word = self.word(row, w);
            while word != 0 {
                let b = word.trailing_zeros();
                f(w as u32 * 64 + b);
                word &= word - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_insert_contains() {
        let mut s = SparseBitSet::new();
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(1000));
        assert!(s.insert(64));
        assert!(s.contains(5));
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![5, 64, 1000]);
    }

    #[test]
    fn sparse_union_reports_change() {
        let mut a: SparseBitSet = [1u32, 2, 3].into_iter().collect();
        let b: SparseBitSet = [3u32, 4, 200].into_iter().collect();
        assert!(a.union_with(&b));
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4, 200]);
        assert!(!a.union_with(&b), "second union adds nothing");
        let empty = SparseBitSet::new();
        assert!(!a.union_with(&empty));
    }

    #[test]
    fn atomic_bitmap_set_get() {
        let m = AtomicBitmap::new(3, 130);
        assert_eq!(m.words_per_row(), 3);
        assert!(m.set(1, 5));
        assert!(!m.set(1, 5));
        assert!(m.set(1, 129));
        assert!(m.get(1, 5));
        assert!(!m.get(0, 5));
        assert_eq!(m.count(1), 2);
        assert_eq!(m.row_to_vec(1), vec![5, 129]);
    }

    #[test]
    fn atomic_bitmap_union_rows() {
        let m = AtomicBitmap::new(2, 256);
        for v in [0u32, 63, 64, 255] {
            m.set(0, v);
        }
        assert!(m.union_rows(1, 0));
        assert!(!m.union_rows(1, 0));
        assert_eq!(m.row_to_vec(1), vec![0, 63, 64, 255]);
    }

    #[test]
    fn atomic_bitmap_words_snapshot_restore_roundtrip() {
        let m = AtomicBitmap::new(3, 130);
        for v in [0u32, 64, 129] {
            m.set(1, v);
        }
        m.set(2, 7);
        let words = m.words_snapshot();
        assert_eq!(words.len(), 3 * m.words_per_row());
        let fresh = AtomicBitmap::new(3, 130);
        fresh.restore_words(&words);
        assert_eq!(fresh.row_to_vec(1), vec![0, 64, 129]);
        assert_eq!(fresh.row_to_vec(2), vec![7]);
        assert_eq!(fresh.count(0), 0);
        // Monotone writes continue after a restore.
        assert!(fresh.set(1, 1));
        assert!(!fresh.set(1, 64));
    }

    #[test]
    fn atomic_bitmap_concurrent_sets() {
        let m = AtomicBitmap::new(1, 64 * 64);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..512u32 {
                        m.set(0, (i * 8 + t) % 4096);
                    }
                });
            }
        });
        assert_eq!(m.count(0), 4096);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// SparseBitSet behaves like a BTreeSet model.
        #[test]
        fn sparse_matches_model(values in prop::collection::vec(0u32..5000, 0..300)) {
            let mut s = SparseBitSet::new();
            let mut model = BTreeSet::new();
            for &v in &values {
                prop_assert_eq!(s.insert(v), model.insert(v));
            }
            prop_assert_eq!(s.len(), model.len());
            prop_assert_eq!(s.to_vec(), model.iter().copied().collect::<Vec<_>>());
            for v in 0..5000u32 {
                if model.contains(&v) {
                    prop_assert!(s.contains(v));
                }
            }
        }

        /// Union matches model union and change-reporting is exact.
        #[test]
        fn union_matches_model(
            a in prop::collection::vec(0u32..2000, 0..150),
            b in prop::collection::vec(0u32..2000, 0..150),
        ) {
            let mut sa: SparseBitSet = a.iter().copied().collect();
            let sb: SparseBitSet = b.iter().copied().collect();
            let ma: BTreeSet<u32> = a.iter().copied().collect();
            let mb: BTreeSet<u32> = b.iter().copied().collect();
            let should_change = !mb.is_subset(&ma);
            prop_assert_eq!(sa.union_with(&sb), should_change);
            let want: Vec<u32> = ma.union(&mb).copied().collect();
            prop_assert_eq!(sa.to_vec(), want);
        }

        /// AtomicBitmap rows agree with SparseBitSet on the same inserts.
        #[test]
        fn bitmap_matches_sparse(values in prop::collection::vec(0u32..1000, 0..200)) {
            let m = AtomicBitmap::new(1, 1000);
            let mut s = SparseBitSet::new();
            for &v in &values {
                prop_assert_eq!(m.set(0, v), s.insert(v));
            }
            prop_assert_eq!(m.row_to_vec(0), s.to_vec());
            prop_assert_eq!(m.count(0), s.len());
        }
    }
}
