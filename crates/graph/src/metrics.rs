//! Graph metrics: the quantities the paper's Fig. 11 discussion turns on
//! (density, degree skew, connectivity).

use crate::csr::Csr;
use crate::union_find::SeqUnionFind;

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphMetrics {
    pub nodes: usize,
    /// Undirected edge count (directed count / 2 for symmetric graphs).
    pub undirected_edges: usize,
    /// Undirected edges per node — the density axis of Fig. 11.
    pub density: f64,
    pub max_degree: usize,
    /// max_degree / mean_degree: ≈1 for grids/roads, large for RMAT.
    pub degree_skew: f64,
    pub connected_components: usize,
    pub isolated_nodes: usize,
}

/// Compute [`GraphMetrics`] (host-side, O(N + M)).
pub fn metrics(g: &Csr) -> GraphMetrics {
    let n = g.num_nodes();
    let m = g.num_edges() / 2;
    let mut uf = SeqUnionFind::new(n);
    let mut max_degree = 0usize;
    let mut isolated = 0usize;
    for v in 0..n as u32 {
        let d = g.degree(v);
        max_degree = max_degree.max(d);
        if d == 0 {
            isolated += 1;
        }
        for &w in g.neighbors(v) {
            uf.union(v, w);
        }
    }
    let components = (0..n as u32).filter(|&v| uf.find(v) == v).count();
    let mean = if n == 0 { 0.0 } else { g.num_edges() as f64 / n as f64 };
    GraphMetrics {
        nodes: n,
        undirected_edges: m,
        density: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_degree,
        degree_skew: if mean > 0.0 { max_degree as f64 / mean } else { 0.0 },
        connected_components: components,
        isolated_nodes: isolated,
    }
}

/// Degree histogram with power-of-two buckets: `hist[i]` counts nodes of
/// degree in `[2^i, 2^(i+1))`; `hist[0]` counts degree 0 and 1.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..g.num_nodes() as u32 {
        let d = g.degree(v);
        let bucket = if d <= 1 { 0 } else { (usize::BITS - d.leading_zeros()) as usize - 1 };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    fn path(n: usize) -> Csr {
        let mut b = CsrBuilder::new(n);
        for i in 0..n as u32 - 1 {
            b.add_undirected(i, i + 1, 1);
        }
        b.build()
    }

    #[test]
    fn path_metrics() {
        let m = metrics(&path(10));
        assert_eq!(m.nodes, 10);
        assert_eq!(m.undirected_edges, 9);
        assert_eq!(m.max_degree, 2);
        assert_eq!(m.connected_components, 1);
        assert_eq!(m.isolated_nodes, 0);
        assert!((m.density - 0.9).abs() < 1e-12);
    }

    #[test]
    fn disconnected_and_isolated() {
        let mut b = CsrBuilder::new(5);
        b.add_undirected(0, 1, 1); // nodes 2,3,4 isolated
        let m = metrics(&b.build());
        assert_eq!(m.connected_components, 4);
        assert_eq!(m.isolated_nodes, 3);
    }

    #[test]
    fn star_has_high_skew() {
        let mut b = CsrBuilder::new(9);
        for v in 1..9u32 {
            b.add_undirected(0, v, 1);
        }
        let m = metrics(&b.build());
        assert_eq!(m.max_degree, 8);
        assert!(m.degree_skew > 4.0, "{}", m.degree_skew);
    }

    #[test]
    fn histogram_buckets() {
        // Star of 9: hub degree 8 (bucket 3), leaves degree 1 (bucket 0).
        let mut b = CsrBuilder::new(9);
        for v in 1..9u32 {
            b.add_undirected(0, v, 1);
        }
        let h = degree_histogram(&b.build());
        assert_eq!(h, vec![8, 0, 0, 1]);
        assert!(degree_histogram(&Csr::empty(0)).is_empty());
    }

    #[test]
    fn empty_graph() {
        let m = metrics(&Csr::empty(0));
        assert_eq!(m.nodes, 0);
        assert_eq!(m.density, 0.0);
        assert_eq!(m.connected_components, 0);
    }
}
