//! Kernel-side chunked adjacency lists (paper §7.1, "Kernel-Only").
//!
//! "Each node maintains a linked list of chunks of incoming neighbors.
//! Each chunk contains several nodes. The best chunk size is input
//! dependent and, in our experiments, varies between 512 and 4096.
//! Chunking reduces the frequency of memory allocation at the cost of some
//! internal fragmentation."
//!
//! The device heap (`malloc` in kernel code on CUDA 2.x) is modelled by a
//! lock-free two-level chunk arena: a fixed directory of lazily-initialised
//! segments plus an atomic bump allocator, so concurrent virtual threads
//! can allocate chunks mid-kernel exactly like device-side `malloc`.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::OnceLock;

const INVALID: u32 = u32::MAX;

struct Chunk {
    vals: Box<[AtomicU32]>,
    /// Slots *reserved* (may exceed capacity transiently while racers
    /// overflow into the next chunk).
    len: AtomicU32,
    /// Next chunk id in this node's list, or `INVALID`.
    next: AtomicU32,
}

impl Chunk {
    fn new(cap: usize) -> Self {
        Self {
            vals: (0..cap).map(|_| AtomicU32::new(INVALID)).collect(),
            len: AtomicU32::new(0),
            next: AtomicU32::new(INVALID),
        }
    }
}

/// Concurrent per-node growable adjacency built from fixed-size chunks.
///
/// Multiple threads may [`insert`](ChunkedAdjacency::insert) into the same
/// node concurrently; readers may iterate concurrently with writers and
/// observe a monotonically growing set (exactly the staleness tolerance
/// flow-insensitive points-to analysis allows, §6.4). Values equal to
/// `u32::MAX` are reserved.
pub struct ChunkedAdjacency {
    chunk_size: usize,
    seg_size: usize,
    heads: Vec<AtomicU32>,
    segments: Vec<OnceLock<Vec<Chunk>>>,
    next_chunk: AtomicU32,
    /// Raised when a chunk allocation was denied (§7.1 overflow flag): the
    /// host should [`grow_chunks`](ChunkedAdjacency::grow_chunks) and
    /// relaunch.
    overflow: AtomicBool,
}

/// A [`ChunkedAdjacency::try_insert`] failed because the chunk arena is
/// full; the host must grow the arena and retry the insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaFull;

impl std::fmt::Display for ArenaFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChunkedAdjacency chunk arena exhausted")
    }
}

impl std::error::Error for ArenaFull {}

impl ChunkedAdjacency {
    /// `nodes` adjacency lists built from chunks of `chunk_size` values,
    /// with capacity for at most `max_chunks` chunks in total.
    pub fn new(nodes: usize, chunk_size: usize, max_chunks: usize) -> Self {
        assert!(chunk_size > 0);
        let seg_size = 256usize;
        let segs = max_chunks.div_ceil(seg_size).max(1);
        Self {
            chunk_size,
            seg_size,
            heads: (0..nodes).map(|_| AtomicU32::new(INVALID)).collect(),
            segments: (0..segs).map(|_| OnceLock::new()).collect(),
            next_chunk: AtomicU32::new(0),
            overflow: AtomicBool::new(false),
        }
    }

    /// True if some allocation was denied since the last
    /// [`clear_overflow`](ChunkedAdjacency::clear_overflow).
    pub fn overflowed(&self) -> bool {
        self.overflow.load(Ordering::Acquire)
    }

    /// Host-side: reset the overflow flag before relaunching.
    pub fn clear_overflow(&self) {
        self.overflow.store(false, Ordering::Release);
    }

    /// Current arena capacity in chunks (rounded up to whole segments).
    pub fn max_chunks(&self) -> usize {
        self.segments.len() * self.seg_size
    }

    /// Host-side regrow (§7.1 kernel-host hybrid): extend the arena so at
    /// least `new_max` chunks fit. Requires `&mut self` — only callable
    /// between kernel launches, which is exactly the paper's model (the
    /// host reallocates while no kernel is resident). Shrinking is a no-op.
    pub fn grow_chunks(&mut self, new_max: usize) {
        let want = new_max.div_ceil(self.seg_size).max(1);
        while self.segments.len() < want {
            self.segments.push(OnceLock::new());
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.heads.len()
    }

    /// Chunks allocated so far (the paper's memory-footprint metric for
    /// this strategy).
    pub fn chunks_allocated(&self) -> usize {
        (self.next_chunk.load(Ordering::Acquire) as usize)
            .min(self.segments.len() * self.seg_size)
    }

    /// Bytes of chunk storage currently allocated.
    pub fn bytes_allocated(&self) -> usize {
        self.chunks_allocated() * (self.chunk_size * 4 + 16)
    }

    fn chunk(&self, id: u32) -> &Chunk {
        let seg = id as usize / self.seg_size;
        let segment = self.segments[seg].get_or_init(|| {
            (0..self.seg_size).map(|_| Chunk::new(self.chunk_size)).collect()
        });
        &segment[id as usize % self.seg_size]
    }

    /// Device-heap `malloc`: reserve a fresh chunk id, or raise the
    /// overflow flag and return `None` when the arena is full. A denied
    /// allocation does not consume an id, so every reserved id stays
    /// within the capacity that existed when it was granted.
    fn try_alloc_chunk(&self) -> Option<u32> {
        let cap = (self.segments.len() * self.seg_size) as u32;
        match self
            .next_chunk
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |id| {
                (id < cap).then(|| id + 1)
            }) {
            Ok(id) => Some(id),
            Err(_) => {
                self.overflow.store(true, Ordering::Release);
                None
            }
        }
    }

    /// Append `v` to `node`'s list (no dedup). `v` must not be `u32::MAX`.
    ///
    /// # Panics
    /// Panics when the chunk arena is exhausted — use
    /// [`try_push`](ChunkedAdjacency::try_push) from kernel code that can
    /// recover via the host regrow protocol.
    pub fn push(&self, node: u32, v: u32) {
        assert!(
            self.try_push(node, v).is_ok(),
            "ChunkedAdjacency chunk arena exhausted ({} chunks); construct with a larger max_chunks",
            self.max_chunks()
        );
    }

    /// Fallible [`push`](ChunkedAdjacency::push): `Err(ArenaFull)` when a
    /// needed chunk cannot be allocated, in which case nothing is appended
    /// (a full chunk's `len` may overshoot transiently, which readers
    /// already clamp).
    pub fn try_push(&self, node: u32, v: u32) -> Result<(), ArenaFull> {
        debug_assert_ne!(v, INVALID);
        let mut cur = {
            let head = &self.heads[node as usize];
            let mut h = head.load(Ordering::Acquire);
            if h == INVALID {
                let fresh = self.try_alloc_chunk().ok_or(ArenaFull)?;
                match head.compare_exchange(INVALID, fresh, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => h = fresh,
                    Err(existing) => h = existing, // racer installed one; fresh chunk is leaked-to-arena
                }
            }
            h
        };
        loop {
            let c = self.chunk(cur);
            let slot = c.len.fetch_add(1, Ordering::AcqRel) as usize;
            if slot < self.chunk_size {
                c.vals[slot].store(v, Ordering::Release);
                return Ok(());
            }
            // Chunk full: follow or install the next link.
            let mut nxt = c.next.load(Ordering::Acquire);
            if nxt == INVALID {
                let fresh = self.try_alloc_chunk().ok_or(ArenaFull)?;
                match c.next.compare_exchange(INVALID, fresh, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => nxt = fresh,
                    Err(existing) => nxt = existing,
                }
            }
            cur = nxt;
        }
    }

    /// True if `v` currently appears in `node`'s list.
    pub fn contains(&self, node: u32, v: u32) -> bool {
        let mut found = false;
        self.for_each(node, |x| {
            if x == v {
                found = true;
            }
        });
        found
    }

    /// Append `v` unless already present. Under concurrent insertion of the
    /// same value a duplicate may slip through (check-then-act race); that
    /// is harmless for monotone propagation and mirrors the GPU code.
    /// Returns `true` if this call appended.
    ///
    /// # Panics
    /// Panics when the chunk arena is exhausted — use
    /// [`try_insert`](ChunkedAdjacency::try_insert) from kernel code.
    pub fn insert(&self, node: u32, v: u32) -> bool {
        if self.contains(node, v) {
            false
        } else {
            self.push(node, v);
            true
        }
    }

    /// Fallible [`insert`](ChunkedAdjacency::insert): `Ok(true)` appended,
    /// `Ok(false)` already present, `Err(ArenaFull)` when the arena is out
    /// of chunks (overflow flag raised; the edge is *not* recorded and the
    /// caller must arrange a host regrow + re-scan).
    pub fn try_insert(&self, node: u32, v: u32) -> Result<bool, ArenaFull> {
        if self.contains(node, v) {
            Ok(false)
        } else {
            self.try_push(node, v)?;
            Ok(true)
        }
    }

    /// Visit every value in `node`'s list (duplicates possible; slots still
    /// being written by racers are skipped and will be seen on a later
    /// pass — monotone-read semantics).
    pub fn for_each(&self, node: u32, mut f: impl FnMut(u32)) {
        self.for_each_addr(node, |v, _| f(v));
    }

    /// [`for_each`](ChunkedAdjacency::for_each), additionally reporting
    /// the logical byte address of each slot read. Kernels route
    /// traversals through this and feed the address to
    /// `ThreadCtx::gmem_addr` so the chunk arena's global-memory loads
    /// reach the coalescing meter — without it, chunked-adjacency
    /// pipelines report a zeroed coalescing factor because none of their
    /// hot loads pass through a metered `SharedSlice`. Addresses are
    /// arena offsets (`chunk id × chunk size + slot`) plus a fixed
    /// "device" base — never host pointers, whose run-to-run allocator
    /// jitter would make the measured coalescing factor non-reproducible.
    pub fn for_each_addr(&self, node: u32, mut f: impl FnMut(u32, usize)) {
        let mut cur = self.heads[node as usize].load(Ordering::Acquire);
        while cur != INVALID {
            let c = self.chunk(cur);
            let n = (c.len.load(Ordering::Acquire) as usize).min(self.chunk_size);
            let base = Self::DEV_BASE + cur as usize * self.chunk_size * 4;
            for (i, slot) in c.vals[..n].iter().enumerate() {
                let v = slot.load(Ordering::Acquire);
                if v != INVALID {
                    f(v, base + i * 4);
                }
            }
            cur = c.next.load(Ordering::Acquire);
        }
    }

    /// Number of values currently stored in `node`'s list.
    pub fn degree(&self, node: u32) -> usize {
        let mut d = 0;
        self.for_each(node, |_| d += 1);
        d
    }

    /// Base of the chunk arena's logical device window. Disjoint from
    /// `AtomicBitmap`'s window (`0x1000_0000_0000`).
    pub const DEV_BASE: usize = 0x2000_0000_0000;

    /// The byte extent `(base, len_bytes)` of the arena's logical device
    /// window — what a pipeline registers with `morph-lens` so slot
    /// traversals attribute to this structure. Re-register after
    /// [`grow_chunks`](ChunkedAdjacency::grow_chunks): the base is fixed
    /// but the length tracks the current arena capacity.
    pub fn dev_extent(&self) -> (usize, usize) {
        (Self::DEV_BASE, self.max_chunks() * self.chunk_size * 4)
    }

    /// Sorted, deduplicated snapshot of `node`'s list (host-side; the
    /// paper keeps chunks sorted by id for efficient lookups — we sort on
    /// extraction instead).
    pub fn sorted(&self, node: u32) -> Vec<u32> {
        let mut v = Vec::new();
        self.for_each(node, |x| v.push(x));
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        /// Sequential use matches a BTreeSet model per node, for arbitrary
        /// chunk sizes.
        #[test]
        fn matches_model(
            chunk_size in 1usize..16,
            ops in prop::collection::vec((0u32..6, 0u32..100), 0..300),
        ) {
            let adj = ChunkedAdjacency::new(6, chunk_size, 4096);
            let mut model: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); 6];
            for &(node, v) in &ops {
                prop_assert_eq!(adj.insert(node, v), model[node as usize].insert(v));
            }
            for node in 0..6u32 {
                prop_assert_eq!(
                    adj.sorted(node),
                    model[node as usize].iter().copied().collect::<Vec<_>>()
                );
                prop_assert_eq!(adj.degree(node), model[node as usize].len());
                for v in (0..100).step_by(7) {
                    prop_assert_eq!(adj.contains(node, v), model[node as usize].contains(&v));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_push_and_iterate() {
        let adj = ChunkedAdjacency::new(3, 4, 64);
        for v in 0..10 {
            adj.push(1, v);
        }
        assert_eq!(adj.degree(1), 10);
        assert_eq!(adj.degree(0), 0);
        assert_eq!(adj.sorted(1), (0..10).collect::<Vec<_>>());
        assert!(adj.contains(1, 7));
        assert!(!adj.contains(1, 77));
        // 10 values at chunk size 4 ⇒ 3 chunks.
        assert!(adj.chunks_allocated() >= 3);
        assert!(adj.bytes_allocated() > 0);
    }

    #[test]
    fn insert_dedups_sequentially() {
        let adj = ChunkedAdjacency::new(1, 8, 8);
        assert!(adj.insert(0, 5));
        assert!(!adj.insert(0, 5));
        assert!(adj.insert(0, 6));
        assert_eq!(adj.sorted(0), vec![5, 6]);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        let adj = ChunkedAdjacency::new(4, 16, 4096);
        let per_thread = 500u32;
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let adj = &adj;
                s.spawn(move || {
                    for i in 0..per_thread {
                        adj.push(t % 4, t * 10_000 + i);
                    }
                });
            }
        });
        for node in 0..4u32 {
            let vals = adj.sorted(node);
            // Two writer threads per node, distinct value ranges.
            assert_eq!(vals.len(), 2 * per_thread as usize, "node {node}");
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn arena_exhaustion_panics() {
        // seg_size is 256, so the arena rounds up to 256 chunks of 1 slot.
        let adj = ChunkedAdjacency::new(1, 1, 1);
        for v in 0..300 {
            adj.push(0, v);
        }
    }

    #[test]
    fn exhaustion_raises_overflow_and_grow_recovers() {
        // 256 chunks of 1 slot each (segment rounding).
        let mut adj = ChunkedAdjacency::new(1, 1, 1);
        assert_eq!(adj.max_chunks(), 256);
        for v in 0..256 {
            adj.try_push(0, v).unwrap();
        }
        assert!(!adj.overflowed());
        assert_eq!(adj.try_push(0, 256), Err(ArenaFull));
        assert_eq!(adj.try_insert(0, 256), Err(ArenaFull));
        assert!(adj.overflowed(), "denied alloc must raise the flag");
        // Nothing was recorded for the denied values.
        assert!(!adj.contains(0, 256));

        // Host regrow protocol: clear, grow, re-scan.
        adj.clear_overflow();
        adj.grow_chunks(512);
        assert_eq!(adj.max_chunks(), 512);
        assert_eq!(adj.try_insert(0, 256), Ok(true));
        for v in 257..400 {
            adj.try_push(0, v).unwrap();
        }
        assert!(!adj.overflowed());
        assert_eq!(adj.sorted(0), (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn values_visible_during_concurrent_reads() {
        let adj = ChunkedAdjacency::new(1, 8, 1024);
        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for v in 0..2000 {
                    adj.push(0, v);
                }
            });
            // Reader observes a monotone prefix-closed multiset (no torn
            // or invalid values).
            for _ in 0..50 {
                adj.for_each(0, |v| assert!(v < 2000));
            }
            writer.join().unwrap();
        });
        assert_eq!(adj.degree(0), 2000);
    }
}
