//! # morph-graph — graph substrate for the morph algorithms
//!
//! Data structures from §6 and §7.1 of *Morph Algorithms on GPUs*:
//!
//! * [`Csr`] — compressed sparse row storage, the paper's baseline graph
//!   representation (§6): "all edges are stored contiguously with the edges
//!   of a node stored together"; undirected graphs store each edge twice.
//! * [`ChunkedAdjacency`] — the kernel-only allocation strategy of §7.1:
//!   each node keeps a linked list of *chunks* of incoming neighbors;
//!   "chunking reduces the frequency of memory allocation at the cost of
//!   some internal fragmentation. To enable efficient lookups, we sort the
//!   nodes in the chunks by ID."
//! * [`SparseBitSet`] — word-indexed sparse bit vectors used for points-to
//!   sets.
//! * [`reorder`] — the memory-layout optimisation of §6.1: renumber nodes
//!   so graph neighbors are memory neighbors.
//! * [`UnionFind`] — the "fast union-find data structure" the improved
//!   Galois 2.1.5 MST baseline uses (§8.4).

pub mod builder;
pub mod csr;
pub mod dyn_adj;
pub mod io;
pub mod metrics;
pub mod reorder;
pub mod sparse_bits;
pub mod union_find;

pub use builder::CsrBuilder;
pub use csr::Csr;
pub use dyn_adj::{ArenaFull, ChunkedAdjacency};
pub use sparse_bits::SparseBitSet;
pub use union_find::UnionFind;

/// Node identifier. 32 bits keeps hot structures small (perf-book idiom);
/// all workloads in this repository fit comfortably.
pub type NodeId = u32;
/// Edge weight used by the MST algorithms.
pub type Weight = u32;
