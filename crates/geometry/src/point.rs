//! Grid-snapped 2-D points, generic over storage precision.

/// Grid resolution: every coordinate is an integer multiple of `GRID`.
pub const GRID: f64 = 1.0 / 1024.0;

/// Largest coordinate magnitude the exact predicates support. With
/// |x| ≤ 2¹⁴ the scaled integers are ≤ 2²⁴, so the `incircle` determinant
/// terms stay below ~2¹⁰³ and sum exactly in `i128`.
pub const MAX_COORD: f64 = 16384.0;

/// Coordinate storage type: `f64`, or `f32` for the paper's
/// single-precision ablation (Fig. 8 row 7). All grid values within
/// [`MAX_COORD`] are exactly representable in both, so predicates remain
/// exact either way — the `f32` variant saves memory bandwidth, which is
/// where the paper's speedup came from.
pub trait Coord: Copy + PartialEq + PartialOrd + std::fmt::Debug + Send + Sync + 'static {
    fn to_f64(self) -> f64;
    fn from_f64(v: f64) -> Self;
    const ZERO: Self;
}

impl Coord for f64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    const ZERO: Self = 0.0;
}

impl Coord for f32 {
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    const ZERO: Self = 0.0;
}

/// Snap a raw coordinate to the exact grid (clamping to the supported
/// domain).
#[inline]
pub fn snap(v: f64) -> f64 {
    (v.clamp(-MAX_COORD, MAX_COORD) / GRID).round() * GRID
}

/// A 2-D point with grid-snapped coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point<C: Coord> {
    pub x: C,
    pub y: C,
}

impl<C: Coord> Point<C> {
    /// Construct, snapping both coordinates to the grid.
    #[inline]
    pub fn snapped(x: f64, y: f64) -> Self {
        Self {
            x: C::from_f64(snap(x)),
            y: C::from_f64(snap(y)),
        }
    }

    /// Construct from already-snapped coordinates (debug-checked).
    #[inline]
    pub fn new(x: C, y: C) -> Self {
        debug_assert_eq!(snap(x.to_f64()), x.to_f64(), "x not on grid");
        debug_assert_eq!(snap(y.to_f64()), y.to_f64(), "y not on grid");
        Self { x, y }
    }

    #[inline]
    pub fn xf(&self) -> f64 {
        self.x.to_f64()
    }

    #[inline]
    pub fn yf(&self) -> f64 {
        self.y.to_f64()
    }

    /// Scaled integer coordinates for exact arithmetic.
    #[inline]
    pub fn grid(&self) -> (i64, i64) {
        (
            (self.xf() / GRID).round() as i64,
            (self.yf() / GRID).round() as i64,
        )
    }

    /// Squared Euclidean distance to `other` (inexact f64; used only for
    /// size/quality heuristics, never for topological decisions).
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        let dx = self.xf() - other.xf();
        let dy = self.yf() - other.yf();
        dx * dx + dy * dy
    }

    /// Convert between precisions.
    #[inline]
    pub fn cast<D: Coord>(&self) -> Point<D> {
        Point {
            x: D::from_f64(self.xf()),
            y: D::from_f64(self.yf()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::approx_constant)] // arbitrary sample coordinates, not π/e
    fn snapping_lands_on_grid() {
        for v in [0.0, 1.0, 3.14159, -2.71828, 1000.123456, -16384.9, 99999.0] {
            let s = snap(v);
            assert!((s / GRID).fract().abs() < 1e-9, "{v} -> {s}");
            assert!(s.abs() <= MAX_COORD);
            assert!((s - v.clamp(-MAX_COORD, MAX_COORD)).abs() <= GRID / 2.0 + 1e-12);
        }
    }

    #[test]
    fn grid_values_exact_in_f32() {
        let p64: Point<f64> = Point::snapped(4095.876, -1234.5678);
        let p32: Point<f32> = p64.cast();
        assert_eq!(p32.xf(), p64.xf(), "f32 must represent grid values exactly");
        assert_eq!(p32.yf(), p64.yf());
        assert_eq!(p32.grid(), p64.grid());
    }

    #[test]
    fn grid_integers_roundtrip() {
        let p: Point<f64> = Point::snapped(2.5, -0.25);
        assert_eq!(p.grid(), (2560, -256));
        let q: Point<f64> = Point::snapped(0.0, 0.0);
        assert_eq!(q.grid(), (0, 0));
    }

    #[test]
    fn dist_sq_is_symmetric() {
        let a: Point<f64> = Point::snapped(1.0, 2.0);
        let b: Point<f64> = Point::snapped(4.0, 6.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(b.dist_sq(&a), 25.0);
        assert_eq!(a.dist_sq(&a), 0.0);
    }
}
