//! Triangle measures: circumcenter, circumradius, angles, quality.
//!
//! Unlike the predicates, these are *heuristic* quantities (which triangle
//! counts as "bad", where to put the new point); plain `f64` arithmetic is
//! fine because no topological decision depends on them exactly.

use crate::point::{Coord, Point};

/// Circumcenter in raw `f64` (not snapped); `None` for degenerate
/// (collinear) triangles.
pub fn circumcenter_f64<C: Coord>(
    a: &Point<C>,
    b: &Point<C>,
    c: &Point<C>,
) -> Option<(f64, f64)> {
    let (ax, ay) = (a.xf(), a.yf());
    let (bx, by) = (b.xf(), b.yf());
    let (cx, cy) = (c.xf(), c.yf());
    let d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by));
    if d.abs() < 1e-12 {
        return None;
    }
    let a2 = ax * ax + ay * ay;
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    let ux = (a2 * (by - cy) + b2 * (cy - ay) + c2 * (ay - by)) / d;
    let uy = (a2 * (cx - bx) + b2 * (ax - cx) + c2 * (bx - ax)) / d;
    Some((ux, uy))
}

/// Circumcenter snapped onto the exact grid (the point DMR inserts).
pub fn circumcenter<C: Coord>(a: &Point<C>, b: &Point<C>, c: &Point<C>) -> Option<Point<C>> {
    circumcenter_f64(a, b, c).map(|(x, y)| Point::snapped(x, y))
}

/// Squared circumradius (`f64`), or `f64::INFINITY` for degenerate
/// triangles.
pub fn circumradius_sq<C: Coord>(a: &Point<C>, b: &Point<C>, c: &Point<C>) -> f64 {
    match circumcenter_f64(a, b, c) {
        Some((x, y)) => (a.xf() - x).powi(2) + (a.yf() - y).powi(2),
        None => f64::INFINITY,
    }
}

/// Minimum interior angle in degrees (0 for degenerate triangles).
pub fn min_angle_deg<C: Coord>(a: &Point<C>, b: &Point<C>, c: &Point<C>) -> f64 {
    let la2 = b.dist_sq(c); // opposite a
    let lb2 = a.dist_sq(c); // opposite b
    let lc2 = a.dist_sq(b); // opposite c
    if la2 == 0.0 || lb2 == 0.0 || lc2 == 0.0 {
        return 0.0;
    }
    let angle = |opp2: f64, s1: f64, s2: f64| -> f64 {
        // Law of cosines; clamp for numeric safety.
        let cos = ((s1 + s2 - opp2) / (2.0 * (s1 * s2).sqrt())).clamp(-1.0, 1.0);
        cos.acos().to_degrees()
    };
    angle(la2, lb2, lc2)
        .min(angle(lb2, la2, lc2))
        .min(angle(lc2, la2, lb2))
}

/// Quality policy deciding which triangles are *bad* (must be refined).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriQuality {
    /// Minimum acceptable interior angle, degrees. The paper uses 30°.
    pub min_angle_deg: f64,
    /// Triangles whose shortest edge is below this length are never
    /// considered bad — the standard termination guard (30° sits at the
    /// theoretical edge of guaranteed termination for Chew's algorithm).
    pub min_edge: f64,
}

impl Default for TriQuality {
    fn default() -> Self {
        Self {
            min_angle_deg: 30.0,
            min_edge: 4.0 * crate::point::GRID,
        }
    }
}

impl TriQuality {
    /// Quality bound scaled to a mesh whose points are ~`spacing` apart:
    /// the paper's 30° minimum angle with a short-edge guard at
    /// `spacing / 3`.
    ///
    /// The guard is what makes 30° refinement terminate on arbitrary
    /// inputs: flat triangles along the convex hull have circumcenters
    /// *outside* the mesh, so refining them falls back to boundary-edge
    /// bisection, which makes them flatter — an unbounded cascade unless
    /// sub-guard triangles stop counting as bad (Shewchuk's Triangle
    /// embeds equivalent area/edge cutoffs for the same reason).
    pub fn scaled(spacing: f64) -> Self {
        Self {
            min_angle_deg: 30.0,
            min_edge: (spacing / 3.0).max(4.0 * crate::point::GRID),
        }
    }

    /// Is the triangle bad (violates the quality bound and is still large
    /// enough to refine)?
    pub fn is_bad<C: Coord>(&self, a: &Point<C>, b: &Point<C>, c: &Point<C>) -> bool {
        let shortest = a.dist_sq(b).min(b.dist_sq(c)).min(a.dist_sq(c));
        if shortest <= self.min_edge * self.min_edge {
            return false;
        }
        min_angle_deg(a, b, c) < self.min_angle_deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point<f64> {
        Point::snapped(x, y)
    }

    #[test]
    fn circumcenter_of_right_triangle_is_hypotenuse_midpoint() {
        let (a, b, c) = (p(0.0, 0.0), p(4.0, 0.0), p(0.0, 4.0));
        let (x, y) = circumcenter_f64(&a, &b, &c).unwrap();
        assert!((x - 2.0).abs() < 1e-9 && (y - 2.0).abs() < 1e-9);
        let r2 = circumradius_sq(&a, &b, &c);
        assert!((r2 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_triangle_handled() {
        let (a, b, c) = (p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0));
        assert!(circumcenter_f64(&a, &b, &c).is_none());
        assert!(circumcenter(&a, &b, &c).is_none());
        assert_eq!(circumradius_sq(&a, &b, &c), f64::INFINITY);
        assert_eq!(min_angle_deg(&a, &b, &c), 0.0);
    }

    #[test]
    fn equilateral_angles_are_60() {
        let h = 3f64.sqrt() * 2.0;
        let (a, b, c) = (p(0.0, 0.0), p(4.0, 0.0), p(2.0, h));
        let m = min_angle_deg(&a, &b, &c);
        assert!((m - 60.0).abs() < 0.1, "{m}");
    }

    #[test]
    fn skinny_triangle_is_bad_fat_is_good() {
        let q = TriQuality::default();
        // Very flat triangle: tiny min angle.
        assert!(q.is_bad(&p(0.0, 0.0), &p(10.0, 0.0), &p(5.0, 0.25)));
        // Near-equilateral: fine.
        assert!(!q.is_bad(&p(0.0, 0.0), &p(4.0, 0.0), &p(2.0, 3.4641)));
    }

    #[test]
    fn min_edge_guard_suppresses_badness() {
        let q = TriQuality {
            min_angle_deg: 30.0,
            min_edge: 1.0,
        };
        // Skinny but with a sub-threshold shortest edge → not bad.
        assert!(!q.is_bad(&p(0.0, 0.0), &p(0.5, 0.01), &p(10.0, 0.0)));
    }

    #[test]
    fn circumcenter_snaps_to_grid() {
        let (a, b, c) = (p(0.0, 0.0), p(3.0, 0.1), p(0.1, 3.0));
        let cc = circumcenter(&a, &b, &c).unwrap();
        let (gx, gy) = cc.grid();
        assert_eq!(gx as f64 * crate::point::GRID, cc.xf());
        assert_eq!(gy as f64 * crate::point::GRID, cc.yf());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn pt() -> impl Strategy<Value = Point<f64>> {
        (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::snapped(x, y))
    }

    proptest! {
        /// Circumcenter is equidistant from all three vertices.
        #[test]
        fn circumcenter_equidistant(a in pt(), b in pt(), c in pt()) {
            if let Some((x, y)) = circumcenter_f64(&a, &b, &c) {
                let d = |p: &Point<f64>| (p.xf() - x).powi(2) + (p.yf() - y).powi(2);
                let (da, db, dc) = (d(&a), d(&b), d(&c));
                let scale = da.max(1.0);
                prop_assert!((da - db).abs() < 1e-6 * scale, "{da} vs {db}");
                prop_assert!((da - dc).abs() < 1e-6 * scale);
            }
        }

        /// Angles sum to 180° for non-degenerate triangles, and the minimum
        /// is at most 60°.
        #[test]
        fn min_angle_sane(a in pt(), b in pt(), c in pt()) {
            let m = min_angle_deg(&a, &b, &c);
            prop_assert!((0.0..=60.0001).contains(&m), "{m}");
        }
    }
}
