//! Exact geometric predicates over grid-snapped points.
//!
//! Because every coordinate is an integer multiple of [`crate::GRID`] with
//! magnitude ≤ [`crate::MAX_COORD`], the scaled coordinates are integers
//! |v| ≤ 2²⁴. The `orient2d` determinant is then ≤ 2·2⁵⁰ and the
//! `incircle` determinant ≤ 6·2¹⁰² — both exact in `i128`, so these
//! predicates never misclassify, with no adaptive-precision machinery.

use crate::point::{Coord, Point};

/// Sign of the signed area of triangle `(a, b, c)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// `(a, b, c)` turns counter-clockwise (positive area).
    CounterClockwise,
    /// `(a, b, c)` turns clockwise (negative area).
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Exact orientation test.
#[inline]
pub fn orient2d<C: Coord>(a: &Point<C>, b: &Point<C>, c: &Point<C>) -> Orientation {
    let (ax, ay) = a.grid();
    let (bx, by) = b.grid();
    let (cx, cy) = c.grid();
    let det = (bx - ax) as i128 * (cy - ay) as i128 - (by - ay) as i128 * (cx - ax) as i128;
    match det.cmp(&0) {
        std::cmp::Ordering::Greater => Orientation::CounterClockwise,
        std::cmp::Ordering::Less => Orientation::Clockwise,
        std::cmp::Ordering::Equal => Orientation::Collinear,
    }
}

/// Exact in-circle test: is `d` strictly inside the circumcircle of the
/// **counter-clockwise** triangle `(a, b, c)`?
///
/// Points exactly on the circle return `false` (closed-circle emptiness is
/// the non-strict Delaunay criterion, which keeps cavity retriangulation
/// deterministic under cocircular inputs).
#[inline]
pub fn incircle<C: Coord>(a: &Point<C>, b: &Point<C>, c: &Point<C>, d: &Point<C>) -> bool {
    debug_assert_ne!(
        orient2d(a, b, c),
        Orientation::Clockwise,
        "incircle requires CCW triangle"
    );
    let (ax, ay) = a.grid();
    let (bx, by) = b.grid();
    let (cx, cy) = c.grid();
    let (dx, dy) = d.grid();

    let adx = (ax - dx) as i128;
    let ady = (ay - dy) as i128;
    let bdx = (bx - dx) as i128;
    let bdy = (by - dy) as i128;
    let cdx = (cx - dx) as i128;
    let cdy = (cy - dy) as i128;

    let ad2 = adx * adx + ady * ady;
    let bd2 = bdx * bdx + bdy * bdy;
    let cd2 = cdx * cdx + cdy * cdy;

    let det = adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy);
    det > 0
}

/// True if point `p` lies inside or on the boundary of the CCW triangle
/// `(a, b, c)`.
#[inline]
pub fn in_triangle<C: Coord>(a: &Point<C>, b: &Point<C>, c: &Point<C>, p: &Point<C>) -> bool {
    orient2d(a, b, p) != Orientation::Clockwise
        && orient2d(b, c, p) != Orientation::Clockwise
        && orient2d(c, a, p) != Orientation::Clockwise
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point<f64> {
        Point::snapped(x, y)
    }

    #[test]
    fn orientation_basic() {
        assert_eq!(
            orient2d(&p(0.0, 0.0), &p(1.0, 0.0), &p(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(&p(0.0, 0.0), &p(0.0, 1.0), &p(1.0, 0.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(&p(0.0, 0.0), &p(1.0, 1.0), &p(2.0, 2.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_is_exact_at_grid_resolution() {
        // A near-collinear triple one grid step off the line.
        let a = p(0.0, 0.0);
        let b = p(8192.0, 0.0);
        let c = Point::<f64>::snapped(4096.0, 1.0 / 1024.0);
        assert_eq!(orient2d(&a, &b, &c), Orientation::CounterClockwise);
        let c_on = p(4096.0, 0.0);
        assert_eq!(orient2d(&a, &b, &c_on), Orientation::Collinear);
    }

    #[test]
    fn incircle_unit_circle() {
        // CCW triangle on the unit circle around the origin.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert!(incircle(&a, &b, &c, &p(0.0, 0.0)));
        assert!(!incircle(&a, &b, &c, &p(2.0, 0.0)));
        // On the circle: not strictly inside.
        assert!(!incircle(&a, &b, &c, &p(0.0, -1.0)));
    }

    #[test]
    fn incircle_agrees_with_distance_to_circumcenter() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut tested = 0;
        while tested < 200 {
            let mut pt = || p(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0));
            let (a, b, c, d) = (pt(), pt(), pt(), pt());
            let (a, b, c) = match orient2d(&a, &b, &c) {
                Orientation::CounterClockwise => (a, b, c),
                Orientation::Clockwise => (a, c, b),
                Orientation::Collinear => continue,
            };
            let Some(cc) = crate::triangle::circumcenter_f64(&a, &b, &c) else {
                continue;
            };
            let r2 = (a.xf() - cc.0).powi(2) + (a.yf() - cc.1).powi(2);
            let d2 = (d.xf() - cc.0).powi(2) + (d.yf() - cc.1).powi(2);
            // Only judge clearly-separated cases with the float oracle.
            if (d2 - r2).abs() > 1e-3 * r2.max(1.0) {
                assert_eq!(incircle(&a, &b, &c, &d), d2 < r2);
                tested += 1;
            }
        }
    }

    #[test]
    fn in_triangle_inclusive() {
        let (a, b, c) = (p(0.0, 0.0), p(4.0, 0.0), p(0.0, 4.0));
        assert!(in_triangle(&a, &b, &c, &p(1.0, 1.0)));
        assert!(in_triangle(&a, &b, &c, &p(0.0, 0.0)), "vertex included");
        assert!(in_triangle(&a, &b, &c, &p(2.0, 0.0)), "edge included");
        assert!(!in_triangle(&a, &b, &c, &p(3.0, 3.0)));
        assert!(!in_triangle(&a, &b, &c, &p(-0.25, 1.0)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = Point<f64>> {
        (-4000.0f64..4000.0, -4000.0f64..4000.0).prop_map(|(x, y)| Point::snapped(x, y))
    }

    proptest! {
        /// Swapping two arguments flips orientation.
        #[test]
        fn orientation_antisymmetry(a in arb_point(), b in arb_point(), c in arb_point()) {
            let o1 = orient2d(&a, &b, &c);
            let o2 = orient2d(&b, &a, &c);
            match o1 {
                Orientation::Collinear => prop_assert_eq!(o2, Orientation::Collinear),
                Orientation::CounterClockwise => prop_assert_eq!(o2, Orientation::Clockwise),
                Orientation::Clockwise => prop_assert_eq!(o2, Orientation::CounterClockwise),
            }
        }

        /// Orientation is invariant under cyclic rotation of arguments.
        #[test]
        fn orientation_cyclic(a in arb_point(), b in arb_point(), c in arb_point()) {
            prop_assert_eq!(orient2d(&a, &b, &c), orient2d(&b, &c, &a));
        }

        /// incircle is invariant under cyclic rotation of the triangle.
        #[test]
        fn incircle_cyclic(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
            let (a, b, c) = match orient2d(&a, &b, &c) {
                Orientation::CounterClockwise => (a, b, c),
                Orientation::Clockwise => (a, c, b),
                Orientation::Collinear => return Ok(()),
            };
            let r1 = incircle(&a, &b, &c, &d);
            prop_assert_eq!(incircle(&b, &c, &a, &d), r1);
            prop_assert_eq!(incircle(&c, &a, &b, &d), r1);
        }

        /// Triangle vertices are never strictly inside their own circle.
        #[test]
        fn vertices_not_in_own_circle(a in arb_point(), b in arb_point(), c in arb_point()) {
            let (a, b, c) = match orient2d(&a, &b, &c) {
                Orientation::CounterClockwise => (a, b, c),
                Orientation::Clockwise => (a, c, b),
                Orientation::Collinear => return Ok(()),
            };
            prop_assert!(!incircle(&a, &b, &c, &a));
            prop_assert!(!incircle(&a, &b, &c, &b));
            prop_assert!(!incircle(&a, &b, &c, &c));
        }

        /// f32 storage gives identical predicate results to f64.
        #[test]
        fn f32_matches_f64(a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point()) {
            let (a32, b32, c32, d32): (Point<f32>, Point<f32>, Point<f32>, Point<f32>) =
                (a.cast(), b.cast(), c.cast(), d.cast());
            prop_assert_eq!(orient2d(&a, &b, &c), orient2d(&a32, &b32, &c32));
            if orient2d(&a, &b, &c) == Orientation::CounterClockwise {
                prop_assert_eq!(incircle(&a, &b, &c, &d), incircle(&a32, &b32, &c32, &d32));
            }
        }
    }
}
