//! Incremental Bowyer–Watson Delaunay triangulation.
//!
//! This is the substrate that generates the paper's *input* meshes ("the
//! input meshes are randomly generated"): a Delaunay triangulation of a
//! point set, which `morph-dmr` then refines. Point location walks from
//! the previously-touched triangle; inserting in Morton order keeps walks
//! short. All topological decisions use the exact predicates, so the
//! result is a true (non-strict) Delaunay triangulation.

use crate::point::{Coord, Point};
use crate::predicates::{incircle, orient2d, Orientation};
use std::collections::HashMap;

/// Missing-neighbor marker (convex-hull edges).
pub const NO_NEIGHBOR: u32 = u32::MAX;

/// A triangulation: points plus CCW triangles with cross-edge adjacency.
/// `neighbors[t][i]` is the triangle sharing edge `(v[i], v[(i+1)%3])` of
/// triangle `t`, or [`NO_NEIGHBOR`].
#[derive(Clone, Debug)]
pub struct Triangulation<C: Coord> {
    pub points: Vec<Point<C>>,
    pub triangles: Vec<[u32; 3]>,
    pub neighbors: Vec<[u32; 3]>,
}

impl<C: Coord> Triangulation<C> {
    /// Structural + Delaunay validation (tests / debugging):
    /// * every triangle CCW,
    /// * neighbor links symmetric and edge-consistent,
    /// * local empty-circle property (opposite vertex of every neighbor is
    ///   not strictly inside the circumcircle), which implies global
    ///   Delaunay-ness for a consistent triangulation.
    pub fn validate(&self) -> Result<(), String> {
        for (t, tri) in self.triangles.iter().enumerate() {
            let [a, b, c] = *tri;
            let (pa, pb, pc) = (
                &self.points[a as usize],
                &self.points[b as usize],
                &self.points[c as usize],
            );
            if orient2d(pa, pb, pc) != Orientation::CounterClockwise {
                return Err(format!("triangle {t} not CCW"));
            }
            for i in 0..3 {
                let n = self.neighbors[t][i];
                if n == NO_NEIGHBOR {
                    continue;
                }
                let n = n as usize;
                if n >= self.triangles.len() {
                    return Err(format!("triangle {t} neighbor {n} out of range"));
                }
                let (e0, e1) = (tri[i], tri[(i + 1) % 3]);
                // The neighbor must hold the reversed edge and point back.
                let ntri = self.triangles[n];
                let j = (0..3)
                    .find(|&j| ntri[j] == e1 && ntri[(j + 1) % 3] == e0)
                    .ok_or_else(|| format!("triangle {t} edge {i} not mirrored in {n}"))?;
                if self.neighbors[n][j] as usize != t {
                    return Err(format!("neighbor link {n}->{t} not symmetric"));
                }
                // Local Delaunay: the apex of the neighbor is not strictly
                // inside this triangle's circumcircle.
                let apex = ntri[(j + 2) % 3];
                if incircle(pa, pb, pc, &self.points[apex as usize]) {
                    return Err(format!("edge {t}/{n} violates Delaunay"));
                }
            }
        }
        Ok(())
    }

    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }
}

/// Morton (Z-order) key over grid coordinates, for insertion locality.
fn morton_key<C: Coord>(p: &Point<C>) -> u64 {
    let (gx, gy) = p.grid();
    // Shift into non-negative range; grid magnitudes are ≤ 2^24.
    let x = (gx + (1 << 25)) as u64;
    let y = (gy + (1 << 25)) as u64;
    fn spread(mut v: u64) -> u64 {
        v &= 0x3ff_ffff; // 26 bits
        v = (v | (v << 16)) & 0x0000_ffff_0000_ffff;
        v = (v | (v << 8)) & 0x00ff_00ff_00ff_00ff;
        v = (v | (v << 4)) & 0x0f0f_0f0f_0f0f_0f0f;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    spread(x) | (spread(y) << 1)
}

struct Builder<C: Coord> {
    points: Vec<Point<C>>,
    tris: Vec<[u32; 3]>,
    nbrs: Vec<[u32; 3]>,
    alive: Vec<bool>,
    last: u32,
    // Scratch buffers reused across insertions.
    cavity: Vec<u32>,
    boundary: Vec<(u32, u32, u32)>, // (edge start, edge end, outer triangle)
    stack: Vec<u32>,
    start_map: HashMap<u32, u32>,
}

impl<C: Coord> Builder<C> {
    fn tri_points(&self, t: u32) -> [&Point<C>; 3] {
        let [a, b, c] = self.tris[t as usize];
        [
            &self.points[a as usize],
            &self.points[b as usize],
            &self.points[c as usize],
        ]
    }

    /// Walk from `self.last` to a triangle containing `p` (inclusive of
    /// boundary). Falls back to a linear scan if the walk exceeds a cap
    /// (cannot happen for points inside the super-triangle, but cheap
    /// insurance).
    fn locate(&self, p: &Point<C>) -> Option<u32> {
        let mut cur = self.last;
        if !self.alive[cur as usize] {
            cur = (0..self.tris.len() as u32).find(|&t| self.alive[t as usize])?;
        }
        let cap = 4 * self.tris.len() + 16;
        for _ in 0..cap {
            let [pa, pb, pc] = self.tri_points(cur);
            let t = self.tris[cur as usize];
            let o = [
                orient2d(pa, pb, p),
                orient2d(pb, pc, p),
                orient2d(pc, pa, p),
            ];
            if o.iter().all(|&x| x != Orientation::Clockwise) {
                return Some(cur);
            }
            // Move across the first strictly-violated edge.
            let i = (0..3).find(|&i| o[i] == Orientation::Clockwise).unwrap();
            let n = self.nbrs[cur as usize][i];
            if n == NO_NEIGHBOR {
                // p outside the hull (outside super-triangle): reject.
                let _ = t;
                return None;
            }
            cur = n;
        }
        // Pathological walk; exhaustive search.
        (0..self.tris.len() as u32).find(|&t| {
            self.alive[t as usize] && {
                let [pa, pb, pc] = self.tri_points(t);
                crate::predicates::in_triangle(pa, pb, pc, p)
            }
        })
    }

    /// Insert point id `pid`. Returns `false` if the point was rejected
    /// (outside hull, duplicate of an existing vertex, or degenerate
    /// boundary).
    fn insert(&mut self, pid: u32) -> bool {
        let p = self.points[pid as usize];
        let Some(seed) = self.locate(&p) else {
            return false;
        };
        // Duplicate check against the containing triangle's vertices.
        if self.tris[seed as usize]
            .iter()
            .any(|&v| self.points[v as usize] == p)
        {
            return false;
        }

        // Cavity: BFS over triangles whose circumcircle strictly contains p.
        self.cavity.clear();
        self.boundary.clear();
        self.stack.clear();
        self.stack.push(seed);
        let mut in_cavity = HashMap::new();
        in_cavity.insert(seed, true);
        self.cavity.push(seed);
        while let Some(t) = self.stack.pop() {
            for i in 0..3 {
                let n = self.nbrs[t as usize][i];
                let e0 = self.tris[t as usize][i];
                let e1 = self.tris[t as usize][(i + 1) % 3];
                if n == NO_NEIGHBOR {
                    self.boundary.push((e0, e1, NO_NEIGHBOR));
                    continue;
                }
                match in_cavity.get(&n) {
                    Some(true) => continue,
                    Some(false) => {
                        self.boundary.push((e0, e1, n));
                        continue;
                    }
                    None => {}
                }
                let [na, nb, nc] = self.tri_points(n);
                if incircle(na, nb, nc, &p) {
                    in_cavity.insert(n, true);
                    self.cavity.push(n);
                    self.stack.push(n);
                } else {
                    in_cavity.insert(n, false);
                    self.boundary.push((e0, e1, n));
                }
            }
        }

        // Star-shapedness check: p strictly left of every boundary edge.
        for &(e0, e1, _) in &self.boundary {
            if orient2d(
                &self.points[e0 as usize],
                &self.points[e1 as usize],
                &p,
            ) != Orientation::CounterClockwise
            {
                return false; // degenerate (p on a boundary edge); skip point
            }
        }

        // Retriangulate: one new triangle per boundary edge, recycling
        // cavity slots first.
        let mut free = std::mem::take(&mut self.cavity);
        self.start_map.clear();
        let mut new_tris = Vec::with_capacity(self.boundary.len());
        let boundary = std::mem::take(&mut self.boundary);
        for &(e0, e1, outer) in &boundary {
            let id = match free.pop() {
                Some(slot) => slot,
                None => {
                    self.tris.push([0; 3]);
                    self.nbrs.push([NO_NEIGHBOR; 3]);
                    self.alive.push(true);
                    (self.tris.len() - 1) as u32
                }
            };
            self.alive[id as usize] = true;
            self.tris[id as usize] = [e0, e1, pid];
            self.nbrs[id as usize] = [outer, NO_NEIGHBOR, NO_NEIGHBOR];
            if outer != NO_NEIGHBOR {
                // Fix the outer triangle's back-pointer.
                let ot = self.tris[outer as usize];
                let j = (0..3)
                    .find(|&j| ot[j] == e1 && ot[(j + 1) % 3] == e0)
                    .expect("outer edge must mirror boundary edge");
                self.nbrs[outer as usize][j] = id;
            }
            self.start_map.insert(e0, id);
            new_tris.push(id);
        }
        // Link the fan: triangle with edge (e0,e1) has CCW-next neighbor
        // (the one starting at e1) across its edge (e1, pid), and CCW-prev
        // across (pid, e0).
        for &id in &new_tris {
            let [e0, e1, _] = self.tris[id as usize];
            let next = self.start_map[&e1];
            self.nbrs[id as usize][1] = next;
            self.nbrs[next as usize][2] = id;
            let _ = e0;
        }
        // Any cavity slots not recycled are dead.
        for slot in free {
            self.alive[slot as usize] = false;
        }
        self.boundary = boundary;
        self.last = *new_tris.last().expect("cavity always has a boundary");
        true
    }
}

/// Triangulate `raw` points (snapped to the exact grid; duplicates and
/// degenerate points are dropped). Returns `None` when fewer than 3
/// distinct non-collinear points remain.
pub fn triangulate<C: Coord>(raw: &[Point<C>]) -> Option<Triangulation<C>> {
    if raw.len() < 3 {
        return None;
    }
    // Deduplicate (exact grid equality) and order by Morton key.
    let mut pts: Vec<Point<C>> = raw.to_vec();
    pts.sort_by_key(morton_key);
    pts.dedup_by(|a, b| a == b);
    if pts.len() < 3 {
        return None;
    }

    let n = pts.len() as u32;
    // Super-triangle vertices appended after the real points.
    let mut points = pts;
    points.push(Point::snapped(-16000.0, -16000.0));
    points.push(Point::snapped(16000.0, -16000.0));
    points.push(Point::snapped(0.0, 16000.0));

    let mut b = Builder {
        points,
        tris: vec![[n, n + 1, n + 2]],
        nbrs: vec![[NO_NEIGHBOR; 3]],
        alive: vec![true],
        last: 0,
        cavity: Vec::new(),
        boundary: Vec::new(),
        stack: Vec::new(),
        start_map: HashMap::new(),
    };

    let mut inserted = 0u32;
    for pid in 0..n {
        if b.insert(pid) {
            inserted += 1;
        }
    }
    if inserted < 3 {
        return None;
    }

    // Strip super-triangle triangles; compact ids.
    let keep: Vec<bool> = b
        .tris
        .iter()
        .zip(&b.alive)
        .map(|(t, &alive)| alive && t.iter().all(|&v| v < n))
        .collect();
    let mut remap = vec![NO_NEIGHBOR; b.tris.len()];
    let mut out_tris = Vec::new();
    let mut out_nbrs = Vec::new();
    for (t, &k) in keep.iter().enumerate() {
        if k {
            remap[t] = out_tris.len() as u32;
            out_tris.push(b.tris[t]);
            out_nbrs.push(b.nbrs[t]);
        }
    }
    for nb in &mut out_nbrs {
        for slot in nb.iter_mut() {
            *slot = if *slot == NO_NEIGHBOR {
                NO_NEIGHBOR
            } else {
                remap[*slot as usize]
            };
        }
    }
    b.points.truncate(n as usize);

    let tri = Triangulation {
        points: b.points,
        triangles: out_tris,
        neighbors: out_nbrs,
    };
    if tri.triangles.is_empty() {
        None
    } else {
        Some(tri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point<f64> {
        Point::snapped(x, y)
    }

    #[test]
    fn three_points_make_one_triangle() {
        let t = triangulate(&[p(0.0, 0.0), p(10.0, 0.0), p(5.0, 8.0)]).unwrap();
        assert_eq!(t.num_triangles(), 1);
        assert!(t.validate().is_ok());
        assert_eq!(t.points.len(), 3);
    }

    #[test]
    fn square_makes_two_triangles() {
        let t = triangulate(&[p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap();
        assert_eq!(t.num_triangles(), 2);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn duplicates_are_dropped() {
        let t = triangulate(&[
            p(0.0, 0.0),
            p(0.0, 0.0),
            p(4.0, 0.0),
            p(4.0, 0.0),
            p(2.0, 3.0),
        ])
        .unwrap();
        assert_eq!(t.points.len(), 3);
        assert_eq!(t.num_triangles(), 1);
    }

    #[test]
    fn collinear_input_rejected() {
        assert!(triangulate(&[p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0), p(3.0, 3.0)]).is_none());
        assert!(triangulate::<f64>(&[]).is_none());
        assert!(triangulate(&[p(0.0, 0.0), p(1.0, 0.0)]).is_none());
    }

    #[test]
    fn random_points_yield_valid_delaunay() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        for n in [10usize, 100, 500] {
            let pts: Vec<Point<f64>> = (0..n)
                .map(|_| p(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
                .collect();
            let t = triangulate(&pts).expect("triangulation exists");
            t.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            // Euler sanity: for a planar triangulation of a convex-ish
            // cloud, T ≈ 2n; require at least n.
            assert!(t.num_triangles() >= n / 2, "n={n}, T={}", t.num_triangles());
        }
    }

    #[test]
    fn cocircular_grid_points_are_handled() {
        // A 5×5 integer lattice: maximal cocircularity stress.
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                pts.push(p(i as f64, j as f64));
            }
        }
        let t = triangulate(&pts).unwrap();
        assert!(t.validate().is_ok());
        // 25 points, convex hull 16 ⇒ 2·25−2−16 = 32 triangles.
        assert_eq!(t.num_triangles(), 32);
    }

    #[test]
    fn f32_triangulation_matches_validity() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let pts: Vec<Point<f32>> = (0..200)
            .map(|_| Point::snapped(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)))
            .collect();
        let t = triangulate(&pts).unwrap();
        assert!(t.validate().is_ok());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Any random point set triangulates into a valid Delaunay mesh
        /// (or is rejected as degenerate).
        #[test]
        fn triangulation_always_valid(
            raw in prop::collection::vec((0.0f64..200.0, 0.0f64..200.0), 3..60)
        ) {
            let pts: Vec<Point<f64>> =
                raw.iter().map(|&(x, y)| Point::snapped(x, y)).collect();
            if let Some(t) = triangulate(&pts) {
                prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
                // All original (deduped) points appear as vertices of some
                // triangle or were rejected as degenerate—but at minimum,
                // every vertex index is in range.
                for tri in &t.triangles {
                    for &v in tri {
                        prop_assert!((v as usize) < t.points.len());
                    }
                }
            }
        }
    }
}
