//! # morph-geometry — 2-D geometric substrate for Delaunay Mesh Refinement
//!
//! DMR needs three geometric facilities:
//!
//! * **Exact predicates** ([`predicates`]): `orient2d` and `incircle`.
//!   Instead of Shewchuk's adaptive floating-point filters we make the
//!   predicates exact by construction: all coordinates live on a fixed
//!   grid of resolution [`GRID`] (2⁻¹⁰), so after scaling by 1024 they are
//!   integers small enough that both determinants evaluate exactly in
//!   `i128`. Mesh generators snap inputs to the grid, and refinement snaps
//!   every inserted circumcenter — a standard, termination-preserving
//!   perturbation.
//! * **Triangle measures** ([`triangle`]): circumcenter, circumradius,
//!   minimum angle (the quality constraint "no angle less than 30°").
//! * **Initial triangulation** ([`delaunay`]): an incremental
//!   Bowyer–Watson Delaunay triangulator used by the workload generator
//!   (the paper's input meshes are Delaunay triangulations of random
//!   points).
//!
//! Coordinates are generic over [`Coord`] (`f32` or `f64`): the Fig. 8
//! "single-precision arithmetic" ablation row stores the mesh in `f32`.
//! Grid values up to [`MAX_COORD`] are exactly representable in both.

pub mod delaunay;
pub mod point;
pub mod predicates;
pub mod triangle;

pub use delaunay::{triangulate, Triangulation};
pub use point::{Coord, Point, GRID, MAX_COORD};
pub use predicates::{incircle, orient2d, Orientation};
pub use triangle::{circumcenter, circumradius_sq, min_angle_deg, TriQuality};
