//! Online cycle elimination — the classic CPU-side Andersen optimisation
//! the paper mentions its Galois/serial baselines perform ("The CPU codes
//! perform optimizations like online cycle elimination and topological
//! sort that are not included in our GPU code", §8.3).
//!
//! Copy-edge cycles force all member variables to the same points-to set,
//! so they can be collapsed to one representative. We run Tarjan's SCC
//! over the current copy graph whenever the worklist has churned enough,
//! collapse components in a union-find, and keep solving on the smaller
//! graph.

use crate::constraints::{Constraint, PtaProblem};
use crate::Solution;
use morph_graph::union_find::SeqUnionFind;
use morph_graph::SparseBitSet;
use std::collections::{HashSet, VecDeque};

/// Iterative Tarjan SCC over `succ`, restricted to representatives.
fn tarjan_sccs(n: usize, succ: &[HashSet<u32>], rep_of: &mut SeqUnionFind) -> usize {
    #[derive(Clone, Copy)]
    struct Frame {
        v: u32,
        parent: u32,
    }
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut collapsed = 0usize;

    for root in 0..n as u32 {
        if rep_of.find(root) != root || index[root as usize] != u32::MAX {
            continue;
        }
        // Explicit DFS to avoid recursion depth limits.
        let mut call: Vec<(Frame, Vec<u32>, usize)> = Vec::new();
        let start_neighbors: Vec<u32> = succ[root as usize]
            .iter()
            .map(|&d| rep_of.find(d))
            .filter(|&d| d != root)
            .collect();
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        call.push((
            Frame {
                v: root,
                parent: u32::MAX,
            },
            start_neighbors,
            0,
        ));

        while let Some((frame, neighbors, mut cursor)) = call.pop() {
            let v = frame.v;
            let mut descended = false;
            while cursor < neighbors.len() {
                let w = neighbors[cursor];
                cursor += 1;
                if index[w as usize] == u32::MAX {
                    // Descend.
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    let wn: Vec<u32> = succ[w as usize]
                        .iter()
                        .map(|&d| rep_of.find(d))
                        .filter(|&d| d != w)
                        .collect();
                    call.push((frame, neighbors, cursor));
                    call.push((Frame { v: w, parent: v }, wn, 0));
                    descended = true;
                    break;
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            }
            if descended {
                continue;
            }
            // v finished.
            if low[v as usize] == index[v as usize] {
                // Pop the SCC rooted at v.
                let mut members = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w as usize] = false;
                    members.push(w);
                    if w == v {
                        break;
                    }
                }
                if members.len() > 1 {
                    collapsed += members.len() - 1;
                    for w in &members {
                        rep_of.union(v, *w);
                    }
                }
            }
            if frame.parent != u32::MAX {
                let p = frame.parent as usize;
                low[p] = low[p].min(low[v as usize]);
            }
        }
    }
    collapsed
}

/// Solve with periodic online cycle elimination. Produces the identical
/// fixed point to [`crate::serial::solve`] (every cycle member reports
/// the collapsed representative's set).
pub fn solve(prob: &PtaProblem) -> Solution {
    let n = prob.num_vars;
    let mut rep = SeqUnionFind::new(n);
    let mut pts: Vec<SparseBitSet> = vec![SparseBitSet::new(); n];
    let mut succ: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    let mut loads_by_src: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut stores_by_dst: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut work: VecDeque<u32> = VecDeque::new();
    let mut queued = vec![false; n];

    let enqueue = |work: &mut VecDeque<u32>, queued: &mut Vec<bool>, v: u32| {
        if !queued[v as usize] {
            queued[v as usize] = true;
            work.push_back(v);
        }
    };

    for &c in &prob.constraints {
        match c {
            Constraint::AddressOf { p, q } => {
                if pts[p as usize].insert(q) {
                    enqueue(&mut work, &mut queued, p);
                }
            }
            Constraint::Copy { p, q } => {
                if p != q && succ[q as usize].insert(p) {
                    enqueue(&mut work, &mut queued, q);
                }
            }
            Constraint::Load { p, q } => loads_by_src[q as usize].push(p),
            Constraint::Store { p, q } => stores_by_dst[p as usize].push(q),
        }
    }

    let mut processed_since_scc = 0usize;
    let scc_interval = (n / 2).max(64);

    while let Some(node) = work.pop_front() {
        queued[node as usize] = false;
        let node = rep.find(node);
        processed_since_scc += 1;

        if processed_since_scc >= scc_interval {
            processed_since_scc = 0;
            if tarjan_sccs(n, &succ, &mut rep) > 0 {
                // Merge collapsed state into representatives.
                for v in 0..n as u32 {
                    let r = rep.find(v);
                    if r != v {
                        let moved = std::mem::take(&mut pts[v as usize]);
                        if pts[r as usize].union_with(&moved) {
                            enqueue(&mut work, &mut queued, r);
                        }
                        let edges = std::mem::take(&mut succ[v as usize]);
                        for d in edges {
                            let d = rep.find(d);
                            if d != r && succ[r as usize].insert(d) {
                                enqueue(&mut work, &mut queued, r);
                            }
                        }
                        let loads = std::mem::take(&mut loads_by_src[v as usize]);
                        loads_by_src[r as usize].extend(loads);
                        let stores = std::mem::take(&mut stores_by_dst[v as usize]);
                        stores_by_dst[r as usize].extend(stores);
                        enqueue(&mut work, &mut queued, r);
                    }
                }
            }
        }

        let points_to = pts[node as usize].to_vec();
        let loads = loads_by_src[node as usize].clone();
        for p in loads {
            let p = rep.find(p);
            for &v in &points_to {
                let v = rep.find(v);
                if v != p && succ[v as usize].insert(p) {
                    enqueue(&mut work, &mut queued, v);
                }
            }
        }
        let stores = stores_by_dst[node as usize].clone();
        for q in stores {
            let q = rep.find(q);
            for &v in &points_to {
                let v = rep.find(v);
                if q != v && succ[q as usize].insert(v) {
                    enqueue(&mut work, &mut queued, q);
                }
            }
        }
        let src = std::mem::take(&mut pts[node as usize]);
        let targets: Vec<u32> = succ[node as usize].iter().copied().collect();
        for m in targets {
            let m = rep.find(m);
            if m != node && pts[m as usize].union_with(&src) {
                enqueue(&mut work, &mut queued, m);
            }
        }
        pts[node as usize] = src;
    }

    // Project representative sets back onto every variable. Pointees may
    // themselves have been collapsed; a pointee set always names original
    // variable ids (address-of targets), which never change — only the
    // *holder* of the set moves under collapsing.
    (0..n as u32)
        .map(|v| pts[rep.find(v) as usize].to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_matches_serial() {
        let (prob, _) = PtaProblem::fig5();
        assert_eq!(solve(&prob), crate::serial::solve(&prob));
    }

    #[test]
    fn copy_cycle_is_collapsed_to_same_solution() {
        // 0 → 1 → 2 → 0 copy cycle fed from &x.
        let mut prob = PtaProblem::new(4);
        prob.add(Constraint::AddressOf { p: 0, q: 3 });
        prob.add(Constraint::Copy { p: 1, q: 0 });
        prob.add(Constraint::Copy { p: 2, q: 1 });
        prob.add(Constraint::Copy { p: 0, q: 2 });
        let sol = solve(&prob);
        assert_eq!(sol, crate::serial::solve(&prob));
        assert_eq!(sol[0], vec![3]);
        assert_eq!(sol[1], vec![3]);
        assert_eq!(sol[2], vec![3]);
    }

    #[test]
    fn random_problems_match_serial() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(123);
        for trial in 0..8 {
            let n = 80;
            let mut prob = PtaProblem::new(n);
            for _ in 0..240 {
                let p = rng.gen_range(0..n as u32);
                let q = rng.gen_range(0..n as u32);
                prob.add(match rng.gen_range(0..4) {
                    0 => Constraint::AddressOf { p, q },
                    1 => Constraint::Copy { p, q },
                    2 => Constraint::Load { p, q },
                    _ => Constraint::Store { p, q },
                });
            }
            assert_eq!(
                solve(&prob),
                crate::serial::solve(&prob),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn tarjan_collapses_a_simple_cycle() {
        let mut uf = SeqUnionFind::new(4);
        let mut succ: Vec<HashSet<u32>> = vec![HashSet::new(); 4];
        succ[0].insert(1);
        succ[1].insert(2);
        succ[2].insert(0);
        succ[3].insert(0); // feeds the cycle, not part of it
        let collapsed = tarjan_sccs(4, &succ, &mut uf);
        assert_eq!(collapsed, 2);
        assert!(uf.same(0, 1) && uf.same(1, 2));
        assert!(!uf.same(3, 0));
    }
}
