//! # morph-pta — Andersen-style points-to analysis (paper §4, §6.4, §8.3)
//!
//! Flow- and context-insensitive inclusion-based points-to analysis: the
//! constraint graph's nodes are program pointers; address-of constraints
//! seed points-to sets; copy/load/store constraints add edges along which
//! sets flow until a fixed point. The node count is fixed but **edges grow
//! monotonically and unpredictably** — the morph dimension.
//!
//! Engines:
//! * [`serial`] — classic worklist solver over sparse bit vectors,
//! * [`cpu`] — multicore **push-based** rounds (targets updated with
//!   atomics — the synchronization cost the paper's pull model avoids),
//! * [`gpu`] — the paper's design: bulk-synchronous **two-phase**
//!   (add-edges / propagate) **pull-based** kernels, with per-node
//!   incoming-edge lists allocated kernel-side in chunks
//!   ([`morph_graph::ChunkedAdjacency`], §7.1 Kernel-Only),
//! * [`cycle_elim`] — serial solver with **online cycle elimination**, the
//!   CPU-side optimisation the paper notes its baselines perform but its
//!   GPU code omits (§8.3).

pub mod constraints;
pub mod cpu;
pub mod cycle_elim;
pub mod gpu;
pub mod serial;

pub use constraints::{Constraint, PtaProblem};

/// A solved analysis: `pts[v]` is the sorted set of variables `v` may
/// point to. All engines produce this canonical form for comparison.
pub type Solution = Vec<Vec<u32>>;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_constraint(n: u32) -> impl Strategy<Value = Constraint> {
        (0u32..n, 0u32..n, 0u8..4).prop_map(|(p, q, kind)| match kind {
            0 => Constraint::AddressOf { p, q },
            1 => Constraint::Copy { p, q },
            2 => Constraint::Load { p, q },
            _ => Constraint::Store { p, q },
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// All four solvers compute the same fixed point on arbitrary
        /// constraint sets.
        #[test]
        fn solvers_agree(cons in prop::collection::vec(arb_constraint(24), 0..80)) {
            let mut prob = PtaProblem::new(24);
            for c in cons {
                prob.add(c);
            }
            let want = serial::solve(&prob);
            prop_assert_eq!(&cpu::solve(&prob, 3), &want);
            prop_assert_eq!(&gpu::solve(&prob, 3), &want);
            prop_assert_eq!(&cycle_elim::solve(&prob), &want);
        }

        /// The fixed point is monotone: adding constraints never shrinks
        /// any points-to set.
        #[test]
        fn monotonicity(
            base in prop::collection::vec(arb_constraint(16), 0..40),
            extra in prop::collection::vec(arb_constraint(16), 0..10),
        ) {
            let mut p1 = PtaProblem::new(16);
            for &c in &base {
                p1.add(c);
            }
            let mut p2 = PtaProblem::new(16);
            for &c in base.iter().chain(&extra) {
                p2.add(c);
            }
            let s1 = serial::solve(&p1);
            let s2 = serial::solve(&p2);
            for v in 0..16 {
                let small: std::collections::BTreeSet<u32> = s1[v].iter().copied().collect();
                let big: std::collections::BTreeSet<u32> = s2[v].iter().copied().collect();
                prop_assert!(small.is_subset(&big), "var {v}");
            }
        }
    }
}
