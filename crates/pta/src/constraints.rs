//! Points-to constraints (paper §4, Fig. 5).
//!
//! "There are four kinds of constraints: address-of (p = &q), copy
//! (p = q), load (p = *q) and store (*p = q). The address-of constraints
//! determine the initial points-to information in the constraint graph and
//! the other three types of constraints add edges."

/// One points-to constraint over variable ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// `p = &q`
    AddressOf { p: u32, q: u32 },
    /// `p = q`
    Copy { p: u32, q: u32 },
    /// `p = *q`
    Load { p: u32, q: u32 },
    /// `*p = q`
    Store { p: u32, q: u32 },
}

/// A points-to analysis instance.
#[derive(Clone, Debug, Default)]
pub struct PtaProblem {
    pub num_vars: usize,
    pub constraints: Vec<Constraint>,
}

impl PtaProblem {
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            constraints: Vec::new(),
        }
    }

    pub fn add(&mut self, c: Constraint) {
        debug_assert!(self.vars_of(c).iter().all(|&v| (v as usize) < self.num_vars));
        self.constraints.push(c);
    }

    fn vars_of(&self, c: Constraint) -> [u32; 2] {
        match c {
            Constraint::AddressOf { p, q }
            | Constraint::Copy { p, q }
            | Constraint::Load { p, q }
            | Constraint::Store { p, q } => [p, q],
        }
    }

    /// Counts per constraint kind: `(address-of, copy, load, store)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut n = (0, 0, 0, 0);
        for c in &self.constraints {
            match c {
                Constraint::AddressOf { .. } => n.0 += 1,
                Constraint::Copy { .. } => n.1 += 1,
                Constraint::Load { .. } => n.2 += 1,
                Constraint::Store { .. } => n.3 += 1,
            }
        }
        n
    }

    /// The paper's Fig. 5 example: a = &x; b = &y; p = &a; *p = b; c = a.
    pub fn fig5() -> (Self, &'static [&'static str]) {
        const NAMES: &[&str] = &["a", "b", "p", "c", "x", "y"];
        let (a, b, p, c, x, y) = (0, 1, 2, 3, 4, 5);
        let mut prob = Self::new(6);
        prob.add(Constraint::AddressOf { p: a, q: x });
        prob.add(Constraint::AddressOf { p: b, q: y });
        prob.add(Constraint::AddressOf { p, q: a });
        prob.add(Constraint::Store { p, q: b });
        prob.add(Constraint::Copy { p: c, q: a });
        (prob, NAMES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape() {
        let (prob, names) = PtaProblem::fig5();
        assert_eq!(prob.num_vars, 6);
        assert_eq!(prob.constraints.len(), 5);
        assert_eq!(prob.kind_counts(), (3, 1, 0, 1));
        assert_eq!(names.len(), 6);
    }
}
