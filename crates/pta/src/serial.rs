//! Sequential worklist solver — the reference semantics and the "Serial"
//! column of Fig. 10.

use crate::constraints::{Constraint, PtaProblem};
use crate::Solution;
use morph_graph::SparseBitSet;
use std::collections::{HashSet, VecDeque};

/// Solve to fixed point with a classic worklist algorithm over sparse bit
/// vectors.
pub fn solve(prob: &PtaProblem) -> Solution {
    let n = prob.num_vars;
    let mut pts: Vec<SparseBitSet> = vec![SparseBitSet::new(); n];
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut succ_set: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    // Load/store constraints indexed by their pointer operand.
    let mut loads_by_src: Vec<Vec<u32>> = vec![Vec::new(); n]; // q -> [p] for p = *q
    let mut stores_by_dst: Vec<Vec<u32>> = vec![Vec::new(); n]; // p -> [q] for *p = q

    let mut work: VecDeque<u32> = VecDeque::new();
    let mut queued = vec![false; n];
    let push = |work: &mut VecDeque<u32>, queued: &mut Vec<bool>, v: u32| {
        if !queued[v as usize] {
            queued[v as usize] = true;
            work.push_back(v);
        }
    };

    for &c in &prob.constraints {
        match c {
            Constraint::AddressOf { p, q } => {
                if pts[p as usize].insert(q) {
                    push(&mut work, &mut queued, p);
                }
            }
            Constraint::Copy { p, q } => {
                if succ_set[q as usize].insert(p) {
                    succ[q as usize].push(p);
                    push(&mut work, &mut queued, q);
                }
            }
            Constraint::Load { p, q } => loads_by_src[q as usize].push(p),
            Constraint::Store { p, q } => stores_by_dst[p as usize].push(q),
        }
    }

    while let Some(nid) = work.pop_front() {
        queued[nid as usize] = false;
        let points_to = pts[nid as usize].to_vec();

        // p = *nid : every pointee v of nid flows into p  ⇒ edge v → p.
        for &p in &loads_by_src[nid as usize] {
            for &v in &points_to {
                if succ_set[v as usize].insert(p) {
                    succ[v as usize].push(p);
                    push(&mut work, &mut queued, v);
                }
            }
        }
        // *nid = q : q flows into every pointee v of nid ⇒ edge q → v.
        for &q in &stores_by_dst[nid as usize] {
            for &v in &points_to {
                if succ_set[q as usize].insert(v) {
                    succ[q as usize].push(v);
                    push(&mut work, &mut queued, q);
                }
            }
        }
        // Propagate along copy edges.
        let src = std::mem::take(&mut pts[nid as usize]);
        for &m in &succ[nid as usize] {
            if m != nid && pts[m as usize].union_with(&src) {
                push(&mut work, &mut queued, m);
            }
        }
        pts[nid as usize] = src;
    }

    pts.into_iter().map(|s| s.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_fixed_point() {
        // Paper Fig. 5: a = &x; b = &y; p = &a; *p = b; c = a.
        // Final: a → {x, y}, b → {y}, p → {a}, c → {x, y}.
        let (prob, _) = PtaProblem::fig5();
        let sol = solve(&prob);
        let (a, b, p, c, x, y) = (0usize, 1, 2, 3, 4u32, 5u32);
        assert_eq!(sol[a], vec![x, y]);
        assert_eq!(sol[b], vec![y]);
        assert_eq!(sol[p], vec![0]); // p -> {a}
        assert_eq!(sol[c], vec![x, y]);
        assert!(sol[x as usize].is_empty());
        assert!(sol[y as usize].is_empty());
    }

    #[test]
    fn copy_chain_propagates() {
        let mut prob = PtaProblem::new(4);
        prob.add(Constraint::AddressOf { p: 0, q: 3 });
        prob.add(Constraint::Copy { p: 1, q: 0 });
        prob.add(Constraint::Copy { p: 2, q: 1 });
        let sol = solve(&prob);
        assert_eq!(sol[0], vec![3]);
        assert_eq!(sol[1], vec![3]);
        assert_eq!(sol[2], vec![3]);
    }

    #[test]
    fn load_store_indirection() {
        // p = &a; q = &b; *p = q; r = *p  ⇒ a → {b}, r → {b}.
        let (p, q, r, a, b) = (0u32, 1, 2, 3, 4);
        let mut prob = PtaProblem::new(5);
        prob.add(Constraint::AddressOf { p, q: a });
        prob.add(Constraint::AddressOf { p: q, q: b });
        prob.add(Constraint::Store { p, q });
        prob.add(Constraint::Load { p: r, q: p });
        let sol = solve(&prob);
        assert_eq!(sol[a as usize], vec![b]);
        assert_eq!(sol[r as usize], vec![b]);
    }

    #[test]
    fn cyclic_copies_terminate() {
        let mut prob = PtaProblem::new(3);
        prob.add(Constraint::AddressOf { p: 0, q: 2 });
        prob.add(Constraint::Copy { p: 1, q: 0 });
        prob.add(Constraint::Copy { p: 0, q: 1 });
        let sol = solve(&prob);
        assert_eq!(sol[0], vec![2]);
        assert_eq!(sol[1], vec![2]);
    }

    #[test]
    fn empty_problem() {
        let sol = solve(&PtaProblem::new(3));
        assert!(sol.iter().all(|s| s.is_empty()));
    }
}
