//! Virtual-GPU **pull-based two-phase** solver (paper §4 "GPU
//! Implementation", §6.4).
//!
//! "Processing of each constraint happens in two phases. In the first
//! phase, the constraints add edges to the graph. In the second phase,
//! the points-to information is propagated along these edges." Each node
//! keeps a chunked list of **incoming** neighbors (§7.1 Kernel-Only
//! allocation) and pulls from them, so "no synchronization is needed to
//! update the points-to information" — stale reads are safe because the
//! analysis is monotone.
//!
//! The §7.6 divergence optimisation ("we similarly move all pointer nodes
//! with enabled incoming edges to one side of the array") is applied by
//! the host between iterations.
//!
//! The chunk arena starts lean and grows under the §7.1 kernel-host
//! protocol: a denied chunk allocation raises an overflow flag, the host
//! regrows the arena between launches (via
//! [`morph_core::runtime::drive_recovering`]) and the next phase-0
//! constraint re-scan re-derives any dropped edge — safe because the
//! analysis is monotone.

use crate::constraints::{Constraint, PtaProblem};
use crate::Solution;
use morph_core::compact::partition_active;
use morph_core::runtime::{drive_recovering, DriveError, HostAction, RecoveryOpts, StepReport};
use morph_core::{AdaptiveParallelism, PayloadReader, PayloadWriter};
use morph_graph::sparse_bits::AtomicBitmap;
use morph_graph::ChunkedAdjacency;
use morph_gpu_sim::{
    AtomicU32Slice, BarrierKind, GpuConfig, Kernel, LaunchStats, ThreadCtx, TraceEvent, VirtualGpu,
};
use std::sync::atomic::{AtomicBool, Ordering};

/// Engine switches.
#[derive(Clone, Copy, Debug)]
pub struct PtaOpts {
    /// Apply the adaptive threads-per-block schedule (§7.4: 128 doubling
    /// to 1024 over the first three iterations).
    pub adaptive: bool,
    /// Host-side compaction of nodes with changed inputs (§7.6).
    pub divergence_sort: bool,
    /// Chunk size for the incoming-edge lists (paper: input-dependent,
    /// 512–4096; our graphs are smaller).
    pub chunk_size: usize,
}

impl Default for PtaOpts {
    fn default() -> Self {
        Self {
            adaptive: true,
            divergence_sort: true,
            chunk_size: 64,
        }
    }
}

/// Logical device windows for the solver's auxiliary arrays (disjoint
/// from the bitmap window `0x1000_0000_0000` and the chunk-arena window
/// `0x2000_0000_0000`), so morph-lens attributes their traffic per
/// structure.
const ORDER_DEV_BASE: usize = 0x6000_0000_0000;
const DIRTY_DEV_BASE: usize = 0x6010_0000_0000;

struct PtaKernel<'a> {
    prob: &'a PtaProblem,
    complex: &'a [Constraint],
    pts: &'a AtomicBitmap,
    incoming: &'a ChunkedAdjacency,
    /// Node processing order (compacted by the host when enabled).
    order: &'a AtomicU32Slice,
    /// 1 when the node's points-to set changed in the previous iteration.
    dirty: &'a AtomicU32Slice,
    changed: &'a AtomicBool,
    /// Raised when an edge was dropped because the chunk arena denied an
    /// allocation (genuine or fault-injected); tells the host to regrow.
    denied: &'a AtomicBool,
}

impl PtaKernel<'_> {
    /// Meter one points-to row's word loads: the bitmap owns its storage,
    /// so without this the solver's dominant global-memory traffic never
    /// reaches the coalescing meter (BENCH_5 reported a 0.0 coalescing
    /// factor for PTA for exactly this reason).
    fn meter_row(&self, ctx: &ThreadCtx<'_>, row: usize) {
        for w in 0..self.pts.words_per_row() {
            ctx.gmem_addr(self.pts.word_addr(row, w));
        }
    }

    /// Add `src → dst` unless present. On a denied chunk allocation the
    /// edge is simply dropped this round: the host regrows the arena and
    /// the next phase-0 re-scan re-derives it (monotone analysis).
    fn add_edge(&self, ctx: &ThreadCtx<'_>, dst: u32, src: u32) {
        // Metered membership walk over dst's chunk list (the arena's
        // slot loads are global-memory accesses too).
        let mut present = false;
        self.incoming.for_each_addr(dst, |x, addr| {
            ctx.gmem_addr(addr);
            if x == src {
                present = true;
            }
        });
        if present {
            return;
        }
        if ctx.fault_deny_alloc() || self.incoming.try_push(dst, src).is_err() {
            self.denied.store(true, Ordering::Release);
            return;
        }
        ctx.gmem_addr(DIRTY_DEV_BASE + src as usize * 4);
        self.dirty.store_relaxed(src as usize, 1);
        self.changed.store(true, Ordering::Release);
    }
}

impl Kernel for PtaKernel<'_> {
    fn phases(&self) -> usize {
        2
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
        match phase {
            // Phase 1: constraints add incoming edges.
            0 => {
                let mut any = false;
                for i in ctx.chunked(self.complex.len()) {
                    any = true;
                    match self.complex[i] {
                        Constraint::Load { p, q } => {
                            // p = *q: each pointee v of q feeds p.
                            self.meter_row(ctx, q as usize);
                            self.pts.for_each(q as usize, |v| self.add_edge(ctx, p, v));
                        }
                        Constraint::Store { p, q } => {
                            // *p = q: q feeds each pointee v of p.
                            self.meter_row(ctx, p as usize);
                            self.pts.for_each(p as usize, |v| self.add_edge(ctx, v, q));
                        }
                        _ => unreachable!("complex holds only loads/stores"),
                    }
                }
                any
            }
            // Phase 2: pull along incoming edges.
            _ => {
                let n = self.prob.num_vars;
                let mut any = false;
                for oi in ctx.chunked(n) {
                    ctx.gmem_addr(ORDER_DEV_BASE + oi * 4);
                    let node = self.order.load_relaxed(oi);
                    let mut grew = false;
                    self.incoming.for_each_addr(node, |src, addr| {
                        ctx.gmem_addr(addr);
                        ctx.gmem_addr(DIRTY_DEV_BASE + src as usize * 4);
                        if src != node && self.dirty.load_relaxed(src as usize) != 0 {
                            // The word-parallel union reads every source
                            // word; attribute those loads too.
                            self.meter_row(ctx, src as usize);
                            if self.pts.union_rows(node as usize, src as usize) {
                                grew = true;
                            }
                        }
                    });
                    if grew {
                        any = true;
                        // Publish for the *next* iteration (phase barrier
                        // separates marking from this iteration's reads —
                        // a missed same-iteration read re-pulls next time).
                        ctx.gmem_addr(DIRTY_DEV_BASE + node as usize * 4);
                        self.dirty.store(node as usize, 2);
                        self.changed.store(true, Ordering::Release);
                    }
                }
                any
            }
        }
    }
}

/// Outcome with virtual-GPU counters.
#[derive(Debug)]
pub struct GpuSolveOutcome {
    pub solution: Solution,
    pub launch: LaunchStats,
    pub iterations: u64,
    /// Bytes allocated kernel-side for incoming-edge chunks.
    pub edge_bytes: usize,
    /// Failed launches that were re-run.
    pub retries: u32,
    /// Host-side chunk-arena regrows (§7.1 kernel-host round trips).
    pub regrows: u32,
}

/// Solve on the virtual GPU with `sms` workers.
///
/// # Panics
/// Panics if launches keep failing past the default recovery budgets; use
/// [`try_solve_with`] for structured errors or fault injection.
pub fn solve_with(prob: &PtaProblem, opts: PtaOpts, sms: usize) -> GpuSolveOutcome {
    try_solve_with(prob, opts, sms, &RecoveryOpts::default())
        .unwrap_or_else(|e| panic!("GPU points-to analysis failed: {e}"))
}

/// Fault-tolerant [`solve_with`] under the recovering driver: failed
/// launches are retried (safe — the analysis is monotone, so a half-run
/// kernel only leaves behind valid edges and points-to bits) and chunk-
/// arena exhaustion triggers a host regrow + re-scan.
pub fn try_solve_with(
    prob: &PtaProblem,
    opts: PtaOpts,
    sms: usize,
    recovery: &RecoveryOpts,
) -> Result<GpuSolveOutcome, DriveError> {
    let n = prob.num_vars;
    let pts = AtomicBitmap::new(n, n.max(1));
    // Start the chunk arena lean (§7.1 kernel-host: "allocate a little
    // more than half of the available memory…and grow on overflow"): the
    // recovering driver regrows it on demand, so no worst-case O(n²)
    // pre-allocation is needed.
    let max_chunks = n + 64;
    let mut incoming = ChunkedAdjacency::new(n, opts.chunk_size, max_chunks);
    let dirty = AtomicU32Slice::new(n, 0);

    let mut complex: Vec<Constraint> = Vec::new();
    for &c in &prob.constraints {
        match c {
            Constraint::AddressOf { p, q } => {
                pts.set(p as usize, q);
                dirty.store_relaxed(p as usize, 1);
            }
            Constraint::Copy { p, q } => {
                if p != q {
                    // Host-side setup may outgrow the lean arena; regrow
                    // inline (host code never needs the overflow protocol).
                    while incoming.try_push(p, q).is_err() {
                        incoming.clear_overflow();
                        incoming.grow_chunks(incoming.max_chunks() * 2);
                    }
                    dirty.store_relaxed(q as usize, 1);
                }
            }
            c => complex.push(c),
        }
    }

    // Resume from the newest checkpoint, if one exists for this job: the
    // points-to bitmap is the entire fixpoint state. Every node is marked
    // dirty so the first resumed iteration re-pulls everything and phase 0
    // re-derives any Load/Store edge the snapshot pre-dates — both safe
    // because the analysis is monotone.
    let mut iterations_base = 0u64;
    if let Some(ck) = &recovery.checkpoint {
        if let Some(saved) = ck.resume("pta") {
            if let Some(done) = decode_pta_checkpoint(&saved.payload, &pts) {
                iterations_base = done;
                for v in 0..n {
                    dirty.store_relaxed(v, 1);
                }
            }
        }
    }

    let order = AtomicU32Slice::from_vec((0..n as u32).collect());
    let blocks = AdaptiveParallelism::blocks_for_input(sms, n.max(complex.len()), 2048);
    let sched = if opts.adaptive {
        AdaptiveParallelism::pta()
    } else {
        AdaptiveParallelism::fixed(512)
    };
    let mut gpu = VirtualGpu::new(GpuConfig {
        num_sms: sms,
        warp_size: 32,
        blocks,
        threads_per_block: sched.initial_tpb,
        barrier: BarrierKind::SenseReversing,
    });
    recovery.arm(&mut gpu);

    // Register the solver's device structures with the lens (no-op on the
    // default disabled hub). The arena window is re-registered after each
    // regrow since its extent tracks the current capacity.
    {
        let (b, l) = pts.dev_extent();
        recovery.lens.register("pta.pts_bitmap", b, l);
        let (b, l) = incoming.dev_extent();
        recovery.lens.register("pta.chunk_arena", b, l);
        recovery.lens.register("pta.node_order", ORDER_DEV_BASE, n * 4);
        recovery.lens.register("pta.dirty_worklist", DIRTY_DEV_BASE, n * 4);
    }

    #[cfg(feature = "morph-check")]
    let mut oracle = morph_core::OracleGate::new();
    #[cfg(feature = "morph-check")]
    let mut reference: Option<Solution> = None;
    let outcome = drive_recovering(&mut gpu, Some(sched), &recovery.policy, |gpu, ctx| {
        if let Some(new_max) = ctx.regrow_to {
            incoming.clear_overflow();
            incoming.grow_chunks(new_max);
            let (b, l) = incoming.dev_extent();
            recovery.lens.register("pta.chunk_arena", b, l);
        }
        let changed = AtomicBool::new(false);
        let denied = AtomicBool::new(false);
        let k = PtaKernel {
            prob,
            complex: &complex,
            pts: &pts,
            incoming: &incoming,
            order: &order,
            dirty: &dirty,
            changed: &changed,
            denied: &denied,
        };
        let stats = gpu.try_launch(&k)?;

        if incoming.overflowed() || denied.load(Ordering::Acquire) {
            // A dropped edge means the iteration is incomplete: regrow and
            // re-run it. Dirty marks are left un-aged so already-published
            // growth stays visible to the re-run.
            let action = HostAction::Regrow(incoming.max_chunks() * 2);
            #[cfg(feature = "morph-check")]
            if oracle.due(ctx, &action) {
                morph_core::report_oracle(
                    gpu.tracer(),
                    "oracle.pta.fixpoint",
                    pta_oracle(prob, &pts, &mut reference, false),
                );
            }
            return Ok(StepReport {
                stats,
                action,
                progressed: true,
            });
        }

        // Host: age dirty marks (2 → 1 → 0) so a node stays enabled for
        // exactly one iteration after its set changed.
        let mut any_dirty = false;
        for v in 0..n {
            match dirty.load_relaxed(v) {
                2 => {
                    dirty.store_relaxed(v, 1);
                    any_dirty = true;
                }
                1 => dirty.store_relaxed(v, 0),
                _ => {}
            }
        }
        // Per-iteration markers: how many nodes still have enabled
        // incoming edges (the §7.6 divergence-sort population) and the
        // chunk-arena footprint (§7.1 Kernel-Only allocation high water).
        if gpu.tracer().enabled() {
            let dirty_nodes = (0..n).filter(|&v| dirty.load_relaxed(v) != 0).count();
            let iteration = ctx.iteration;
            gpu.tracer().emit(|| TraceEvent::AlgoIteration {
                algo: "pta".into(),
                iteration,
                metric: "dirty_nodes".into(),
                value: dirty_nodes as f64,
            });
            gpu.tracer().emit(|| TraceEvent::Alloc {
                name: "pta.chunk_arena".into(),
                used: incoming.chunks_allocated() as u64,
                capacity: incoming.max_chunks() as u64,
            });
        }
        let action = if !changed.load(Ordering::Acquire) && !any_dirty {
            HostAction::Stop
        } else {
            HostAction::Continue
        };
        // End-state oracle (§6.4): at the fixpoint the points-to sets must
        // equal the CPU reference; after a recovery escalation the partial
        // sets must at least be a sound subset of it (monotone analysis).
        #[cfg(feature = "morph-check")]
        if oracle.due(ctx, &action) {
            morph_core::report_oracle(
                gpu.tracer(),
                "oracle.pta.fixpoint",
                pta_oracle(prob, &pts, &mut reference, action == HostAction::Stop),
            );
        }
        // Iteration boundary: the points-to bits are quiescent. Snapshot
        // if due (the payload closure never runs without an attached
        // store). Regrow iterations returned early above and are skipped.
        if let Some(ck) = &recovery.checkpoint {
            if action != HostAction::Stop && ck.due(ctx.iteration) {
                ck.save(gpu.tracer(), "pta", ctx.iteration, || {
                    encode_pta_checkpoint(&pts, iterations_base + ctx.iteration + 1)
                });
            }
        }
        // §7.6: nodes with enabled incoming edges to one side. Untuned,
        // this runs every iteration; under an attached autotuner it runs
        // only when the controller requests a layout fix (its reorder /
        // compact flags), so well-coalesced iterations skip the sort.
        let reorder_due = ctx.tune.is_none_or(|d| d.reorder || d.compact);
        if opts.divergence_sort && reorder_due && action == HostAction::Continue {
            let mut ids = order.to_vec();
            partition_active(&mut ids, |v| dirty.load_relaxed(v as usize) != 0);
            for (i, v) in ids.into_iter().enumerate() {
                order.store_relaxed(i, v);
            }
        }
        Ok(StepReport {
            stats,
            action,
            // Fixpoint iterations terminate by running out of change, which
            // is exactly the Stop condition above — a livelock rescue is
            // never needed, only retry/regrow.
            progressed: true,
        })
    })?;

    Ok(GpuSolveOutcome {
        solution: (0..n).map(|v| pts.row_to_vec(v)).collect(),
        launch: outcome.stats,
        iterations: iterations_base + outcome.iterations,
        edge_bytes: incoming.bytes_allocated(),
        retries: outcome.retries,
        regrows: outcome.regrows,
    })
}

/// Checkpoint payload schema tag: `"PT"` + layout version.
const PTA_CKPT_TAG: u32 = 0x5054_0001;

/// Minimal resume state: the iteration count and the raw points-to words.
/// Incoming-edge lists are deliberately absent — Copy edges are rebuilt by
/// the host prologue and Load/Store edges are re-derived by phase 0 (the
/// kernel-only allocation protocol makes them pure cache, §7.1).
fn encode_pta_checkpoint(pts: &AtomicBitmap, iterations: u64) -> Vec<u8> {
    let words = pts.words_snapshot();
    let mut w = PayloadWriter::with_capacity(4 + 8 + 8 + words.len() * 8);
    w.u32(PTA_CKPT_TAG);
    w.u64(iterations);
    w.u64_slice(&words);
    w.finish()
}

/// Decode into `pts`; returns the completed-iteration count, or `None`
/// (fresh run) when the payload is foreign or shaped for another problem.
fn decode_pta_checkpoint(payload: &[u8], pts: &AtomicBitmap) -> Option<u64> {
    let mut r = PayloadReader::new(payload);
    if r.u32()? != PTA_CKPT_TAG {
        return None;
    }
    let iterations = r.u64()?;
    let words = r.u64_slice()?;
    if words.len() != pts.rows() * pts.words_per_row() || !r.exhausted() {
        return None;
    }
    pts.restore_words(&words);
    Some(iterations)
}

/// Fixpoint oracle against the serial CPU solver, guarded to small inputs
/// (the reference is cubic-ish). `done` selects strict equality (at Stop)
/// versus monotone soundness (mid-run, after a recovery escalation: every
/// derived points-to bit must already be in the CPU fixpoint).
#[cfg(feature = "morph-check")]
fn pta_oracle(
    prob: &PtaProblem,
    pts: &AtomicBitmap,
    reference: &mut Option<Solution>,
    done: bool,
) -> Result<(), String> {
    let n = prob.num_vars;
    if n > 256 {
        return Ok(());
    }
    let want = reference.get_or_insert_with(|| crate::serial::solve(prob));
    for (v, want_row) in want.iter().enumerate() {
        let got = pts.row_to_vec(v);
        if done && got != *want_row {
            return Err(format!(
                "fixpoint mismatch at node {v}: gpu points-to {got:?} differs from CPU reference {want_row:?}"
            ));
        }
        if let Some(&q) = got.iter().find(|q| !want_row.contains(q)) {
            return Err(format!(
                "unsound points-to bit at node {v}: {q} is not in the CPU fixpoint"
            ));
        }
    }
    Ok(())
}

/// Solve with default options.
pub fn solve(prob: &PtaProblem, sms: usize) -> Solution {
    solve_with(prob, PtaOpts::default(), sms).solution
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_matches_serial() {
        let (prob, _) = PtaProblem::fig5();
        assert_eq!(solve(&prob, 2), crate::serial::solve(&prob));
    }

    #[test]
    fn random_problems_match_serial_all_option_combos() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..4 {
            let n = 50;
            let mut prob = PtaProblem::new(n);
            for _ in 0..140 {
                let p = rng.gen_range(0..n as u32);
                let q = rng.gen_range(0..n as u32);
                prob.add(match rng.gen_range(0..4) {
                    0 => Constraint::AddressOf { p, q },
                    1 => Constraint::Copy { p, q },
                    2 => Constraint::Load { p, q },
                    _ => Constraint::Store { p, q },
                });
            }
            let want = crate::serial::solve(&prob);
            for adaptive in [false, true] {
                for sort in [false, true] {
                    let opts = PtaOpts {
                        adaptive,
                        divergence_sort: sort,
                        chunk_size: 8,
                    };
                    let got = solve_with(&prob, opts, 3);
                    assert_eq!(
                        got.solution, want,
                        "trial {trial} adaptive={adaptive} sort={sort}"
                    );
                    assert!(got.edge_bytes > 0);
                }
            }
        }
    }

    #[test]
    fn injected_alloc_denials_regrow_and_match_serial() {
        use morph_gpu_sim::FaultPlan;
        use std::sync::Arc;

        // Load/store constraints force kernel-side edge allocations.
        let mut prob = PtaProblem::new(8);
        for i in 0..7u32 {
            prob.add(Constraint::AddressOf { p: i, q: i + 1 });
        }
        prob.add(Constraint::Load { p: 6, q: 0 });
        prob.add(Constraint::Store { p: 0, q: 5 });
        prob.add(Constraint::Load { p: 7, q: 6 });
        let want = crate::serial::solve(&prob);

        let recovery = RecoveryOpts {
            fault_plan: Some(Arc::new(FaultPlan::new().with_alloc_denial(0, 2))),
            ..RecoveryOpts::default()
        };
        let got = try_solve_with(&prob, PtaOpts::default(), 2, &recovery)
            .expect("denials must be absorbed by regrows");
        assert_eq!(got.solution, want);
        assert!(got.regrows >= 1, "a denied alloc must trigger a regrow");
    }

    #[test]
    fn tiny_arena_grows_on_demand() {
        use rand::prelude::*;
        // A dense-ish random instance overflowing the lean initial arena
        // exercises the genuine (non-injected) regrow path.
        let mut rng = StdRng::seed_from_u64(99);
        let n = 40;
        let mut prob = PtaProblem::new(n);
        for _ in 0..400 {
            let p = rng.gen_range(0..n as u32);
            let q = rng.gen_range(0..n as u32);
            prob.add(match rng.gen_range(0..4) {
                0 => Constraint::AddressOf { p, q },
                1 => Constraint::Copy { p, q },
                2 => Constraint::Load { p, q },
                _ => Constraint::Store { p, q },
            });
        }
        let opts = PtaOpts {
            chunk_size: 1, // one edge per chunk ⇒ maximal arena pressure
            ..PtaOpts::default()
        };
        let got = solve_with(&prob, opts, 3);
        assert_eq!(got.solution, crate::serial::solve(&prob));
    }

    #[test]
    fn checkpoint_resume_reaches_the_same_fixpoint() {
        use morph_core::runtime::RecoveryPolicy;
        use morph_core::{CheckpointCtl, CheckpointStore};
        use morph_gpu_sim::FaultPlan;
        use rand::prelude::*;
        use std::sync::Arc;

        let mut rng = StdRng::seed_from_u64(123);
        let n = 50;
        let mut prob = PtaProblem::new(n);
        for _ in 0..140 {
            let p = rng.gen_range(0..n as u32);
            let q = rng.gen_range(0..n as u32);
            prob.add(match rng.gen_range(0..4) {
                0 => Constraint::AddressOf { p, q },
                1 => Constraint::Copy { p, q },
                2 => Constraint::Load { p, q },
                _ => Constraint::Store { p, q },
            });
        }
        let want = crate::serial::solve(&prob);

        // First attempt: zero retry budget and a panic at launch 2
        // (0-based) — dies after checkpointing iterations 0 and 1.
        let store = Arc::new(CheckpointStore::in_memory());
        let ctl = CheckpointCtl::new(store.clone(), 11);
        let first = RecoveryOpts {
            policy: RecoveryPolicy {
                max_retries: 0,
                ..RecoveryPolicy::default()
            },
            fault_plan: Some(Arc::new(FaultPlan::new().with_kernel_panic(2, 0, 0, 0))),
            checkpoint: Some(ctl.clone()),
            ..RecoveryOpts::default()
        };
        try_solve_with(&prob, PtaOpts::default(), 3, &first)
            .expect_err("zero retry budget must surface the panic");
        let saved = store.load(11).expect("early iterations were checkpointed");
        assert_eq!(saved.algo, "pta");

        // Resume: restored bits + all-dirty re-pull reach the identical
        // fixpoint, with the replayed iterations credited.
        let second = RecoveryOpts {
            checkpoint: Some(ctl),
            ..RecoveryOpts::default()
        };
        let got = try_solve_with(&prob, PtaOpts::default(), 3, &second).expect("clean resume");
        assert_eq!(got.solution, want);
        assert!(got.iterations > 2, "resume must credit replayed iterations");
    }

    #[test]
    fn foreign_checkpoint_payload_is_refused() {
        let pts = AtomicBitmap::new(4, 4);
        pts.set(0, 3);
        assert_eq!(decode_pta_checkpoint(&[], &pts), None);
        // Right tag, wrong shape.
        let tiny = AtomicBitmap::new(1, 1);
        let payload = encode_pta_checkpoint(&tiny, 9);
        assert_eq!(decode_pta_checkpoint(&payload, &pts), None);
        assert!(pts.get(0, 3), "no partial mutation");
    }

    #[test]
    fn self_loops_and_duplicates_are_safe() {
        let mut prob = PtaProblem::new(3);
        prob.add(Constraint::AddressOf { p: 0, q: 2 });
        prob.add(Constraint::Copy { p: 0, q: 0 });
        prob.add(Constraint::Copy { p: 1, q: 0 });
        prob.add(Constraint::Copy { p: 1, q: 0 });
        assert_eq!(solve(&prob, 2), crate::serial::solve(&prob));
    }
}
