//! Multicore **push-based** solver — the Galois-role baseline of Fig. 10.
//!
//! "In a push-based approach, multiple threads may simultaneously
//! propagate information to the same node and, in general, need to use
//! synchronization" (§6.4). Rounds of two bulk phases (add edges, then
//! push) over host threads; points-to rows are updated with atomic
//! `fetch_or`s, so concurrent pushes into one target contend — the cost
//! the GPU engine's pull model avoids.

use crate::constraints::{Constraint, PtaProblem};
use crate::Solution;
use morph_graph::sparse_bits::AtomicBitmap;
use morph_graph::ChunkedAdjacency;
use morph_gpu_sim::kernel::chunk_bounds;
use std::sync::atomic::{AtomicBool, Ordering};

/// Solve with `threads` workers.
pub fn solve(prob: &PtaProblem, threads: usize) -> Solution {
    let n = prob.num_vars;
    let threads = threads.max(1);
    let pts = AtomicBitmap::new(n, n.max(1));
    // Outgoing copy edges, grown concurrently in chunks (§7.1); the chunk
    // directory is lazy, so cap at the worst-case O(n²) edge set.
    let max_chunks = n * 2 + n * n / 16 + 1024;
    let succ = ChunkedAdjacency::new(n, 16, max_chunks);

    for &c in &prob.constraints {
        match c {
            Constraint::AddressOf { p, q } => {
                pts.set(p as usize, q);
            }
            Constraint::Copy { p, q } => {
                succ.insert(q, p);
            }
            _ => {}
        }
    }
    let complex: Vec<Constraint> = prob
        .constraints
        .iter()
        .copied()
        .filter(|c| matches!(c, Constraint::Load { .. } | Constraint::Store { .. }))
        .collect();

    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::AcqRel) {
        // Phase A: evaluate load/store constraints, adding edges.
        std::thread::scope(|s| {
            for t in 0..threads {
                let (lo, hi) = chunk_bounds(complex.len(), t, threads);
                let (pts, succ, complex, changed) = (&pts, &succ, &complex, &changed);
                s.spawn(move || {
                    for &c in &complex[lo..hi] {
                        match c {
                            Constraint::Load { p, q } => {
                                pts.for_each(q as usize, |v| {
                                    if succ.insert(v, p) {
                                        changed.store(true, Ordering::Release);
                                    }
                                });
                            }
                            Constraint::Store { p, q } => {
                                pts.for_each(p as usize, |v| {
                                    if succ.insert(q, v) {
                                        changed.store(true, Ordering::Release);
                                    }
                                });
                            }
                            _ => unreachable!(),
                        }
                    }
                });
            }
        });
        // Phase B: push along edges (atomic unions into shared targets).
        std::thread::scope(|s| {
            for t in 0..threads {
                let (lo, hi) = chunk_bounds(n, t, threads);
                let (pts, succ, changed) = (&pts, &succ, &changed);
                s.spawn(move || {
                    for src in lo..hi {
                        succ.for_each(src as u32, |dst| {
                            if dst as usize != src && pts.union_rows(dst as usize, src) {
                                changed.store(true, Ordering::Release);
                            }
                        });
                    }
                });
            }
        });
    }

    (0..n).map(|v| pts.row_to_vec(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_matches_serial() {
        let (prob, _) = PtaProblem::fig5();
        assert_eq!(solve(&prob, 4), crate::serial::solve(&prob));
    }

    #[test]
    fn random_problems_match_serial() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..5 {
            let n = 60;
            let mut prob = PtaProblem::new(n);
            for _ in 0..150 {
                let p = rng.gen_range(0..n as u32);
                let q = rng.gen_range(0..n as u32);
                prob.add(match rng.gen_range(0..4) {
                    0 => Constraint::AddressOf { p, q },
                    1 => Constraint::Copy { p, q },
                    2 => Constraint::Load { p, q },
                    _ => Constraint::Store { p, q },
                });
            }
            assert_eq!(
                solve(&prob, 4),
                crate::serial::solve(&prob),
                "trial {trial}"
            );
        }
    }
}
