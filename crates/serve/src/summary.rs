//! End-of-run accounting: fold the trace's job rows into the serving
//! summary the binary prints — throughput, latency percentiles, SLO
//! misses, per-tenant fairness, and the two integrity counters the soak
//! job greps for (`lost`, `dup`).
//!
//! Everything here is derived from [`TraceReport`] — the summary trusts
//! the event stream, not the pool's in-memory state, so a job the pool
//! "forgot" (lost) or started twice without a requeue (dup) is caught by
//! construction.

use crate::pool::SlotHealthSnapshot;
use morph_metrics::{Histogram, HistogramSnapshot};
use morph_trace::{JobEventKind, RestoreOutcome, TraceReport};

/// The folded serving summary.
#[derive(Debug, Default)]
pub struct ServeSummary {
    pub submitted: u64,
    pub finished: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub rejected: u64,
    /// Jobs with a `Submitted` event but no terminal event — must be 0.
    pub lost: u64,
    /// Jobs whose `Started` count exceeds requeues + 1 — must be 0.
    pub duplicate_runs: u64,
    pub requeues: u64,
    /// Job starts that resumed from a checkpoint (`Resumed` events).
    pub resumed: u64,
    /// Evictions (device loss or hung-job watchdog) across all jobs.
    pub evicted: u64,
    /// Device slots whose *last* health transition was a quarantine.
    pub quarantined: u64,
    /// Snapshots taken, and their total encoded payload bytes — the
    /// checkpoint overhead the soak report surfaces.
    pub checkpoints: u64,
    pub checkpoint_bytes: u64,
    pub deadline_misses: u64,
    pub queue_depth_peak: u64,
    /// Wall-clock span from first to last job event, µs.
    pub span_us: u64,
    pub mean_wait_us: u64,
    pub mean_turnaround_us: u64,
    pub max_turnaround_us: u64,
    /// Wait-time distribution across jobs (submit → first start), as a
    /// log₂-bucketed histogram snapshot for percentile queries.
    pub wait_hist: HistogramSnapshot,
    /// Turnaround distribution across jobs (submit → terminal event).
    pub turnaround_hist: HistogramSnapshot,
    /// `(tenant, jobs, finished, run_us, share_pct)` sorted by tenant.
    pub tenants: Vec<(String, u64, u64, u64, f64)>,
    /// Sanitizer violations recorded in the same stream (0 without
    /// `morph-check`).
    pub sanitizer_violations: u64,
    /// In-flight jobs a `--resume` re-queued from a verified snapshot
    /// (`Restore`/`resumed` events).
    pub recovered: u64,
    /// In-flight jobs a `--resume` restarted from zero.
    pub replayed: u64,
    /// Corrupt durable artifacts dropped at recovery (journal-tail
    /// truncations and unusable snapshots; stream-level `Restore` rows).
    pub discarded: u64,
    /// Prior-incarnation terminals the journal accounted without a
    /// re-run — exactly-once accounting across a crash: lifetime totals
    /// are `finished + finished_base` etc., never double-counted.
    pub finished_base: u64,
    pub failed_base: u64,
    pub cancelled_base: u64,
}

impl ServeSummary {
    /// Fold a report (built from the pool's merged event stream).
    pub fn from_report(report: &TraceReport) -> Self {
        let mut s = ServeSummary {
            queue_depth_peak: report.queue_depth_peak,
            deadline_misses: report.deadline_misses(),
            ..ServeSummary::default()
        };
        let mut first_us = u64::MAX;
        let mut last_us = 0u64;
        let mut waits = Vec::new();
        let mut turnarounds = Vec::new();
        for row in report.jobs.values() {
            if let Some(t) = row.submitted_us {
                s.submitted += 1;
                first_us = first_us.min(t);
            }
            if let Some(t) = row.ended_us {
                last_us = last_us.max(t);
            }
            s.requeues += row.requeues;
            s.resumed += row.resumes;
            s.evicted += row.evictions;
            s.checkpoints += row.checkpoints;
            s.checkpoint_bytes += row.checkpoint_bytes;
            if row.starts > row.requeues + 1 {
                s.duplicate_runs += 1;
            }
            match row.outcome {
                Some(JobEventKind::Finished) => s.finished += 1,
                Some(JobEventKind::Failed) => s.failed += 1,
                Some(JobEventKind::Cancelled) => s.cancelled += 1,
                Some(JobEventKind::Rejected) => s.rejected += 1,
                _ => {
                    if row.submitted_us.is_some() {
                        s.lost += 1;
                    }
                }
            }
            if let Some(w) = row.wait_us() {
                waits.push(w);
            }
            if let Some(t) = row.turnaround_us() {
                turnarounds.push(t);
                s.max_turnaround_us = s.max_turnaround_us.max(t);
            }
        }
        if last_us > first_us {
            s.span_us = last_us - first_us;
        }
        s.mean_wait_us = mean(&waits);
        s.mean_turnaround_us = mean(&turnarounds);
        s.wait_hist = histogram_of(&waits);
        s.turnaround_hist = histogram_of(&turnarounds);
        let tenants = report.tenants();
        let total_run: u64 = tenants.values().map(|t| t.run_us).sum();
        s.tenants = tenants
            .into_iter()
            .map(|(name, agg)| {
                let share = if total_run == 0 {
                    0.0
                } else {
                    100.0 * agg.run_us as f64 / total_run as f64
                };
                (name, agg.jobs, agg.finished, agg.run_us, share)
            })
            .collect();
        let mut last_state: std::collections::BTreeMap<u64, &str> = Default::default();
        for h in &report.health {
            last_state.insert(h.device, h.state.as_str());
        }
        s.quarantined = last_state
            .values()
            .filter(|st| **st == "quarantined")
            .count() as u64;
        s.sanitizer_violations = report
            .sanitizers
            .iter()
            .filter(|row| row.status != "ok")
            .count() as u64;
        for r in &report.restores {
            match r.outcome {
                RestoreOutcome::Resumed => s.recovered += 1,
                RestoreOutcome::Restarted => s.replayed += 1,
                RestoreOutcome::Discarded | RestoreOutcome::Truncated => s.discarded += 1,
                RestoreOutcome::Finished => s.finished_base += 1,
                RestoreOutcome::Failed => s.failed_base += 1,
                RestoreOutcome::Cancelled => s.cancelled_base += 1,
            }
        }
        s
    }

    /// Overwrite the quarantine count with the pool's live
    /// circuit-breaker view ([`crate::MorphServe::slot_health`]).
    ///
    /// The fold above reconstructs quarantines from `Health` events,
    /// which is right for post-mortem replay of a bare JSONL file — but
    /// when the pool is still in hand, the breaker itself is
    /// authoritative, and it is the *same* source `/healthz` serves.
    /// Routing both through this snapshot is what guarantees the live
    /// endpoint and the end-of-run summary can never disagree on slot
    /// health.
    pub fn with_slot_health(mut self, slots: &[SlotHealthSnapshot]) -> Self {
        self.quarantined = slots.iter().filter(|s| s.state == "quarantined").count() as u64;
        self
    }

    /// Jobs served per wall-clock second (terminal outcomes over span).
    pub fn throughput_per_s(&self) -> f64 {
        if self.span_us == 0 {
            return 0.0;
        }
        let served = (self.finished + self.failed + self.cancelled) as f64;
        served / (self.span_us as f64 / 1e6)
    }

    /// Human summary plus the machine-greppable `SOAK` line CI checks.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "jobs: {} submitted, {} finished, {} failed, {} cancelled, {} rejected, {} requeues\n",
            self.submitted, self.finished, self.failed, self.cancelled, self.rejected, self.requeues
        ));
        out.push_str(&format!(
            "latency: mean wait {} us, mean turnaround {} us, max turnaround {} us\n",
            self.mean_wait_us, self.mean_turnaround_us, self.max_turnaround_us
        ));
        out.push_str(&format!(
            "percentiles: wait p50/p95/p99 {}/{}/{} us, turnaround p50/p95/p99 {}/{}/{} us\n",
            self.wait_hist.p50(),
            self.wait_hist.p95(),
            self.wait_hist.p99(),
            self.turnaround_hist.p50(),
            self.turnaround_hist.p95(),
            self.turnaround_hist.p99(),
        ));
        out.push_str(&format!(
            "throughput: {:.1} jobs/s over {:.1} ms; queue depth peak {}; deadline misses {}\n",
            self.throughput_per_s(),
            self.span_us as f64 / 1e3,
            self.queue_depth_peak,
            self.deadline_misses
        ));
        for (tenant, jobs, finished, run_us, share) in &self.tenants {
            out.push_str(&format!(
                "tenant {tenant:<8}: {jobs} jobs ({finished} finished), {run_us} device-us ({share:.1}% share)\n"
            ));
        }
        out.push_str(&format!(
            "resilience: {} evicted, {} resumed, {} slots quarantined; {} checkpoints ({} bytes)\n",
            self.evicted, self.resumed, self.quarantined, self.checkpoints, self.checkpoint_bytes
        ));
        if self.has_recovery() {
            out.push_str(&format!(
                "recovery: {} resumed from snapshot, {} restarted, {} discarded; lifetime {} finished, {} failed, {} cancelled (incl. pre-crash)\n",
                self.recovered,
                self.replayed,
                self.discarded,
                self.finished + self.finished_base,
                self.failed + self.failed_base,
                self.cancelled + self.cancelled_base,
            ));
        }
        // Existing greps match on the `lost=/dup=/sanitizer_violations=`
        // prefix, so the resilience and recovery counters extend the
        // line, never reorder it.
        out.push_str(&format!(
            "SOAK lost={} dup={} sanitizer_violations={} resumed={} evicted={} quarantined={} recovered={} replayed={} discarded={}\n",
            self.lost,
            self.duplicate_runs,
            self.sanitizer_violations,
            self.resumed,
            self.evicted,
            self.quarantined,
            self.recovered,
            self.replayed,
            self.discarded
        ));
        out
    }

    /// Whether this run reconciled any durable state on startup.
    fn has_recovery(&self) -> bool {
        self.recovered
            + self.replayed
            + self.discarded
            + self.finished_base
            + self.failed_base
            + self.cancelled_base
            > 0
    }
}

fn mean(xs: &[u64]) -> u64 {
    if xs.is_empty() {
        0
    } else {
        xs.iter().sum::<u64>() / xs.len() as u64
    }
}

fn histogram_of(xs: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &x in xs {
        h.record(x);
    }
    h.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_trace::TraceEvent;

    fn job_ev(job: u64, kind: JobEventKind, t_us: u64) -> TraceEvent {
        TraceEvent::Job {
            job,
            tenant: "t".into(),
            kind,
            queue_depth: 1,
            device: 1,
            t_us,
            deadline_us: 0,
            detail: String::new(),
        }
    }

    #[test]
    fn lost_and_duplicate_jobs_are_counted() {
        let events = [
            // Job 1: clean lifecycle.
            job_ev(1, JobEventKind::Submitted, 0),
            job_ev(1, JobEventKind::Started, 10),
            job_ev(1, JobEventKind::Finished, 20),
            // Job 2: submitted, never terminal => lost.
            job_ev(2, JobEventKind::Submitted, 5),
            // Job 3: two starts with no requeue => duplicate run.
            job_ev(3, JobEventKind::Submitted, 6),
            job_ev(3, JobEventKind::Started, 7),
            job_ev(3, JobEventKind::Started, 8),
            job_ev(3, JobEventKind::Finished, 9),
        ];
        let report = TraceReport::from_events(events.iter());
        let s = ServeSummary::from_report(&report);
        assert_eq!(s.submitted, 3);
        assert_eq!(s.finished, 2);
        assert_eq!(s.lost, 1);
        assert_eq!(s.duplicate_runs, 1);
        let rendered = s.render();
        assert!(rendered.contains("SOAK lost=1 dup=1 sanitizer_violations=0"));
    }

    #[test]
    fn requeued_restart_is_not_a_duplicate() {
        let events = [
            job_ev(1, JobEventKind::Submitted, 0),
            job_ev(1, JobEventKind::Started, 10),
            job_ev(1, JobEventKind::Requeued, 20),
            job_ev(1, JobEventKind::Started, 30),
            job_ev(1, JobEventKind::Finished, 40),
        ];
        let report = TraceReport::from_events(events.iter());
        let s = ServeSummary::from_report(&report);
        assert_eq!(s.duplicate_runs, 0);
        assert_eq!(s.requeues, 1);
        assert_eq!(s.lost, 0);
    }

    #[test]
    fn resilience_counters_fold_from_the_stream() {
        let events = [
            job_ev(1, JobEventKind::Submitted, 0),
            job_ev(1, JobEventKind::Started, 10),
            TraceEvent::Checkpoint {
                job: 1,
                algo: "mst".into(),
                iteration: 0,
                version: 1,
                bytes: 64,
                t_us: 12,
            },
            TraceEvent::Eviction {
                job: 1,
                device: 1,
                reason: "device_loss".into(),
                t_us: 15,
            },
            job_ev(1, JobEventKind::Requeued, 15),
            job_ev(1, JobEventKind::Resumed, 20),
            job_ev(1, JobEventKind::Started, 21),
            job_ev(1, JobEventKind::Finished, 30),
            TraceEvent::Health {
                device: 2,
                state: "quarantined".into(),
                failures: 3,
                t_us: 40,
            },
        ];
        let report = TraceReport::from_events(events.iter());
        let s = ServeSummary::from_report(&report);
        assert_eq!(s.lost, 0);
        assert_eq!(s.duplicate_runs, 0, "an evicted restart is not a dup");
        assert_eq!(s.resumed, 1);
        assert_eq!(s.evicted, 1);
        assert_eq!(s.quarantined, 1);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.checkpoint_bytes, 64);
        let rendered = s.render();
        assert!(rendered.contains(
            "SOAK lost=0 dup=0 sanitizer_violations=0 resumed=1 evicted=1 quarantined=1"
        ));
        assert!(rendered.contains("resilience: 1 evicted, 1 resumed, 1 slots quarantined"));
    }

    #[test]
    fn recovery_counters_fold_and_extend_the_soak_line() {
        let restore = |job, outcome| TraceEvent::Restore {
            job,
            outcome,
            version: 0,
            iteration: 0,
            t_us: 1,
            detail: String::new(),
        };
        let events = [
            // One pre-crash terminal, one resume, one restart, one
            // stream-level truncation — then the resumed pair finishes.
            restore(4, RestoreOutcome::Finished),
            restore(5, RestoreOutcome::Resumed),
            restore(6, RestoreOutcome::Restarted),
            restore(0, RestoreOutcome::Truncated),
            job_ev(5, JobEventKind::Submitted, 2),
            job_ev(5, JobEventKind::Started, 10),
            job_ev(5, JobEventKind::Finished, 20),
            job_ev(6, JobEventKind::Submitted, 2),
            job_ev(6, JobEventKind::Started, 11),
            job_ev(6, JobEventKind::Finished, 21),
        ];
        let report = TraceReport::from_events(events.iter());
        let s = ServeSummary::from_report(&report);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.replayed, 1);
        assert_eq!(s.discarded, 1);
        assert_eq!(s.finished_base, 1);
        assert_eq!(s.lost, 0, "recovered jobs complete their lifecycle");
        let rendered = s.render();
        assert!(rendered.contains("recovered=1 replayed=1 discarded=1"), "{rendered}");
        // Exactly-once accounting: job 4 counts once, in the lifetime total.
        assert!(rendered.contains("lifetime 3 finished"), "{rendered}");
    }

    #[test]
    fn runs_without_recovery_render_no_recovery_line() {
        let events = [
            job_ev(1, JobEventKind::Submitted, 0),
            job_ev(1, JobEventKind::Started, 1),
            job_ev(1, JobEventKind::Finished, 2),
        ];
        let report = TraceReport::from_events(events.iter());
        let rendered = ServeSummary::from_report(&report).render();
        assert!(!rendered.contains("recovery:"), "{rendered}");
        assert!(rendered.contains("recovered=0 replayed=0 discarded=0"), "{rendered}");
    }

    #[test]
    fn slot_health_snapshot_overrides_the_stream_fold() {
        // The stream says device 2's last transition was a quarantine…
        let events = [
            job_ev(1, JobEventKind::Submitted, 0),
            job_ev(1, JobEventKind::Started, 10),
            job_ev(1, JobEventKind::Finished, 20),
            TraceEvent::Health {
                device: 2,
                state: "quarantined".into(),
                failures: 3,
                t_us: 40,
            },
        ];
        let report = TraceReport::from_events(events.iter());
        let s = ServeSummary::from_report(&report);
        assert_eq!(s.quarantined, 1);
        // …but the breaker (the /healthz source) says it has since been
        // probed back to health — the live view wins.
        let live = [
            SlotHealthSnapshot {
                device: 1,
                state: "healthy",
                consecutive_failures: 0,
            },
            SlotHealthSnapshot {
                device: 2,
                state: "probation",
                consecutive_failures: 0,
            },
        ];
        let s = s.with_slot_health(&live);
        assert_eq!(s.quarantined, 0);
        assert!(s.render().contains("quarantined=0"));

        // And when the breaker still holds the slot open, both agree.
        let live = [SlotHealthSnapshot {
            device: 2,
            state: "quarantined",
            consecutive_failures: 4,
        }];
        let s = ServeSummary::from_report(&report).with_slot_health(&live);
        assert_eq!(s.quarantined, 1);
    }

    #[test]
    fn throughput_and_latency_fold() {
        let events = [
            job_ev(1, JobEventKind::Submitted, 0),
            job_ev(1, JobEventKind::Started, 100),
            job_ev(1, JobEventKind::Finished, 1_000_000),
        ];
        let report = TraceReport::from_events(events.iter());
        let s = ServeSummary::from_report(&report);
        assert_eq!(s.span_us, 1_000_000);
        assert!((s.throughput_per_s() - 1.0).abs() < 1e-9);
        assert_eq!(s.mean_wait_us, 100);
        assert_eq!(s.mean_turnaround_us, 1_000_000);
        // A single-sample histogram reports that sample at every quantile.
        assert_eq!(s.wait_hist.p50(), 100);
        assert_eq!(s.wait_hist.p99(), 100);
        assert_eq!(s.turnaround_hist.p50(), 1_000_000);
        assert!(s.render().contains("percentiles: wait p50/p95/p99 100/100/100 us"));
    }

    #[test]
    fn percentiles_separate_the_tail_from_the_median() {
        // 19 fast jobs and one straggler: p50 stays near the fast cohort
        // while p99 surfaces the straggler's bucket.
        let mut events = Vec::new();
        for j in 0..20u64 {
            let wait = if j == 19 { 500_000 } else { 100 };
            events.push(job_ev(j, JobEventKind::Submitted, j * 10));
            events.push(job_ev(j, JobEventKind::Started, j * 10 + wait));
            events.push(job_ev(j, JobEventKind::Finished, j * 10 + wait + 50));
        }
        let report = TraceReport::from_events(events.iter());
        let s = ServeSummary::from_report(&report);
        assert!(s.wait_hist.p50() < 200, "median tracks the fast cohort");
        assert!(
            s.wait_hist.p99() >= 500_000 / 2,
            "p99 lands in the straggler's log2 bucket, got {}",
            s.wait_hist.p99()
        );
        assert_eq!(s.wait_hist.max, 500_000);
    }
}
