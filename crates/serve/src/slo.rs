//! SLO burn-rate monitoring over per-tenant job turnarounds.
//!
//! The classic multi-window, multi-burn-rate alert, run in-process: every
//! terminal job is one sample — *bad* when it failed or its turnaround
//! exceeded [`SloConfig::objective_us`] — and the monitor keeps a bounded
//! sample window per tenant. The burn rate over a window is the bad
//! fraction divided by the error budget: burn 1.0 means the tenant is
//! consuming budget exactly at the sustainable rate, burn 10 means ten
//! times too fast. An alert fires on the *rising edge* of both the fast
//! and the slow window crossing [`SloConfig::burn_threshold`] — the fast
//! window makes the alert responsive, the slow window keeps one unlucky
//! job from paging — and re-arms once the fast window falls back under.
//!
//! The pool feeds the monitor at every terminal transition and mirrors
//! the fast burn on the `morph_slo_burn_rate` gauge (milli-units, the
//! registry's gauges being integers); alerts become
//! [`TraceEvent::Alert`](morph_trace::TraceEvent) in the shared stream
//! and surface on `/healthz`.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// Objective and alerting shape for the turnaround SLO.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Per-job turnaround objective (submit → terminal), µs.
    pub objective_us: u64,
    /// Fraction of jobs allowed to miss the objective (e.g. 0.05 = 5%).
    pub error_budget: f64,
    /// Fast burn window, µs — responsiveness.
    pub fast_window_us: u64,
    /// Slow burn window, µs — noise suppression. Samples older than this
    /// are discarded.
    pub slow_window_us: u64,
    /// Both windows' burn rates must reach this multiple of the budget
    /// rate before the alert fires.
    pub burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            objective_us: 2_000_000,
            error_budget: 0.05,
            fast_window_us: 5_000_000,
            slow_window_us: 60_000_000,
            burn_threshold: 10.0,
        }
    }
}

/// One tenant's live burn rates, as `/healthz` reports them.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnSnapshot {
    pub tenant: String,
    pub fast: f64,
    pub slow: f64,
    pub firing: bool,
}

/// A fired alert, retained for `/healthz` (the pool also emits it as a
/// `TraceEvent::Alert`).
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    pub tenant: String,
    /// Fast-window burn rate at firing time.
    pub value: f64,
    pub threshold: f64,
    pub t_us: u64,
    pub detail: String,
}

/// What one [`SloMonitor::observe`] call concluded.
#[derive(Debug, Clone, PartialEq)]
pub struct SloObservation {
    pub fast_burn: f64,
    pub slow_burn: f64,
    pub firing: bool,
    /// Present only on the not-firing → firing edge.
    pub alert: Option<SloAlert>,
}

#[derive(Debug, Default)]
struct TenantWindow {
    /// `(t_us, bad)` samples, oldest first, pruned past the slow window.
    samples: VecDeque<(u64, bool)>,
    firing: bool,
}

impl TenantWindow {
    fn burn(&self, window_us: u64, now_us: u64, budget: f64) -> f64 {
        let horizon = now_us.saturating_sub(window_us);
        let (mut bad, mut total) = (0u64, 0u64);
        for &(t, b) in self.samples.iter().rev() {
            if t < horizon {
                break;
            }
            total += 1;
            bad += u64::from(b);
        }
        if total == 0 || budget <= 0.0 {
            return 0.0;
        }
        (bad as f64 / total as f64) / budget
    }
}

/// Thread-safe per-tenant burn-rate state. One per pool.
pub struct SloMonitor {
    cfg: SloConfig,
    tenants: Mutex<BTreeMap<String, TenantWindow>>,
    /// Most recent alerts, newest last (bounded).
    alerts: Mutex<VecDeque<SloAlert>>,
}

const ALERT_RETENTION: usize = 32;

impl SloMonitor {
    pub fn new(cfg: SloConfig) -> Self {
        SloMonitor {
            cfg,
            tenants: Mutex::new(BTreeMap::new()),
            alerts: Mutex::new(VecDeque::new()),
        }
    }

    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Feed one terminal job. `ok` is whether it finished successfully;
    /// a failed job is a bad sample no matter how fast it failed.
    pub fn observe(
        &self,
        tenant: &str,
        turnaround_us: u64,
        ok: bool,
        now_us: u64,
    ) -> SloObservation {
        let bad = !ok || turnaround_us > self.cfg.objective_us;
        let mut tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        let w = tenants.entry(tenant.to_string()).or_default();
        w.samples.push_back((now_us, bad));
        let horizon = now_us.saturating_sub(self.cfg.slow_window_us);
        while w.samples.front().is_some_and(|&(t, _)| t < horizon) {
            w.samples.pop_front();
        }
        let fast = w.burn(self.cfg.fast_window_us, now_us, self.cfg.error_budget);
        let slow = w.burn(self.cfg.slow_window_us, now_us, self.cfg.error_budget);
        let firing = fast >= self.cfg.burn_threshold && slow >= self.cfg.burn_threshold;
        let rising = firing && !w.firing;
        w.firing = firing;
        drop(tenants);
        let alert = rising.then(|| {
            let a = SloAlert {
                tenant: tenant.to_string(),
                value: fast,
                threshold: self.cfg.burn_threshold,
                t_us: now_us,
                detail: format!(
                    "fast={fast:.1}x slow={slow:.1}x over {}us objective",
                    self.cfg.objective_us
                ),
            };
            let mut alerts = self.alerts.lock().unwrap_or_else(|e| e.into_inner());
            if alerts.len() == ALERT_RETENTION {
                alerts.pop_front();
            }
            alerts.push_back(a.clone());
            a
        });
        SloObservation {
            fast_burn: fast,
            slow_burn: slow,
            firing,
            alert,
        }
    }

    /// Live burn rates per tenant, evaluated at `now_us`.
    pub fn burn_rates(&self, now_us: u64) -> Vec<BurnSnapshot> {
        let tenants = self.tenants.lock().unwrap_or_else(|e| e.into_inner());
        tenants
            .iter()
            .map(|(tenant, w)| BurnSnapshot {
                tenant: tenant.clone(),
                fast: w.burn(self.cfg.fast_window_us, now_us, self.cfg.error_budget),
                slow: w.burn(self.cfg.slow_window_us, now_us, self.cfg.error_budget),
                firing: w.firing,
            })
            .collect()
    }

    /// The retained alerts, oldest first.
    pub fn recent_alerts(&self) -> Vec<SloAlert> {
        self.alerts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            objective_us: 1_000,
            error_budget: 0.1,
            fast_window_us: 10_000,
            slow_window_us: 100_000,
            burn_threshold: 5.0,
        }
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let m = SloMonitor::new(cfg());
        for i in 0..50 {
            let o = m.observe("acme", 500, true, i * 100);
            assert_eq!(o.fast_burn, 0.0);
            assert!(o.alert.is_none());
        }
        assert!(m.recent_alerts().is_empty());
        let rates = m.burn_rates(5_000);
        assert_eq!(rates.len(), 1);
        assert!(!rates[0].firing);
    }

    #[test]
    fn sustained_misses_fire_once_on_the_rising_edge() {
        let m = SloMonitor::new(cfg());
        // Every job misses the objective: burn = 1.0/0.1 = 10x in both
        // windows as soon as samples exist.
        let mut alerts = 0;
        for i in 0..20 {
            let o = m.observe("acme", 5_000, true, i * 100);
            if o.alert.is_some() {
                alerts += 1;
                assert!(o.firing);
                assert!(o.fast_burn >= 5.0);
            }
        }
        assert_eq!(alerts, 1, "alert fires on the edge, not per sample");
        assert_eq!(m.recent_alerts().len(), 1);
        assert!(m.recent_alerts()[0].detail.contains("objective"));
    }

    #[test]
    fn failures_are_bad_samples_regardless_of_latency() {
        let m = SloMonitor::new(cfg());
        let o = m.observe("acme", 1, false, 0);
        assert!(o.fast_burn > 0.0, "a fast failure still burns budget");
    }

    #[test]
    fn recovery_rearms_the_alert() {
        let m = SloMonitor::new(cfg());
        for i in 0..5 {
            m.observe("acme", 5_000, true, i * 100);
        }
        assert_eq!(m.recent_alerts().len(), 1);
        // A stretch of good jobs dilutes the fast window below threshold…
        for i in 0..100 {
            m.observe("acme", 100, true, 1_000 + i * 100);
        }
        assert!(!m.burn_rates(11_000)[0].firing);
        // …so the next sustained miss period fires again.
        for i in 0..20 {
            m.observe("acme", 5_000, true, 200_000 + i * 100);
        }
        assert_eq!(m.recent_alerts().len(), 2);
    }

    #[test]
    fn tenants_are_independent() {
        let m = SloMonitor::new(cfg());
        for i in 0..10 {
            m.observe("bad", 5_000, true, i * 100);
            m.observe("good", 100, true, i * 100);
        }
        let rates = m.burn_rates(1_000);
        let by_tenant: BTreeMap<_, _> =
            rates.iter().map(|r| (r.tenant.as_str(), r)).collect();
        assert!(by_tenant["bad"].firing);
        assert!(!by_tenant["good"].firing);
        for a in m.recent_alerts() {
            assert_eq!(a.tenant, "bad");
        }
    }

    #[test]
    fn samples_age_out_of_the_slow_window() {
        let m = SloMonitor::new(cfg());
        for i in 0..10 {
            m.observe("acme", 5_000, true, i * 100);
        }
        // Far in the future, the old misses are gone: one good sample
        // reads as zero burn.
        let o = m.observe("acme", 100, true, 10_000_000);
        assert_eq!(o.fast_burn, 0.0);
        assert_eq!(o.slow_burn, 0.0);
    }
}
