//! Workload-file replay: a plain-text job list the `morph-serve` binary
//! feeds into a pool, plus a seeded generator for mixed soak workloads.
//!
//! Line format (whitespace-separated, `#` starts a comment):
//!
//! ```text
//! <tenant> <priority> <deadline_ms|-> <max_attempts> <algo> <args…>
//! ```
//!
//! where `<algo> <args…>` is [`Workload::encode`]'s format:
//!
//! ```text
//! dmr <triangles> <seed>
//! sp  <vars> <clauses> <k> <max_sweeps> <seed>
//! pta <vars> <constraints> <seed>
//! mst <nodes> <edges> <seed>
//! ```

use crate::job::{JobSpec, Priority, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A replay-file parse failure, with the 1-based line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// Encode one spec as a replay line.
pub fn encode_line(spec: &JobSpec) -> String {
    format!(
        "{} {} {} {} {}",
        spec.tenant,
        spec.priority.as_str(),
        spec.deadline
            .map_or_else(|| "-".to_string(), |d| d.as_millis().to_string()),
        spec.retry.max_attempts,
        spec.workload.encode()
    )
}

/// Parse a whole replay file. Blank lines and `#` comments are skipped.
pub fn parse_file(text: &str) -> Result<Vec<JobSpec>, ParseError> {
    let mut specs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        specs.push(parse_line(line).map_err(|reason| ParseError {
            line: i + 1,
            reason,
        })?);
    }
    Ok(specs)
}

fn parse_line(line: &str) -> Result<JobSpec, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 5 {
        return Err(format!(
            "expected `<tenant> <priority> <deadline_ms|-> <max_attempts> <algo> <args…>`, got {} field(s)",
            fields.len()
        ));
    }
    let tenant = fields[0].to_string();
    let priority =
        Priority::parse(fields[1]).ok_or_else(|| format!("unknown priority {:?}", fields[1]))?;
    let deadline = match fields[2] {
        "-" => None,
        ms => Some(Duration::from_millis(
            ms.parse::<u64>()
                .map_err(|_| format!("bad deadline_ms {ms:?}"))?,
        )),
    };
    let max_attempts: u32 = fields[3]
        .parse()
        .map_err(|_| format!("bad max_attempts {:?}", fields[3]))?;
    let workload = Workload::parse(&fields[4..])
        .ok_or_else(|| format!("bad workload spec {:?}", fields[4..].join(" ")))?;
    let mut spec = JobSpec::new(tenant, workload)
        .with_priority(priority)
        .with_retry(max_attempts);
    if let Some(d) = deadline {
        spec = spec.with_deadline(d);
    }
    Ok(spec)
}

/// Generate a seeded mixed workload: `jobs` specs spread across three
/// tenants and all four pipelines, with a sprinkle of priorities and
/// deadlines. Sizes are kept small enough that a soak of ~64 jobs runs
/// in CI time on the simulator.
pub fn generate_mixed(jobs: usize, seed: u64) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tenants = ["acme", "blue", "cyan"];
    (0..jobs)
        .map(|i| {
            let tenant = tenants[rng.gen_range(0..tenants.len())];
            let job_seed = seed.wrapping_mul(1_000).wrapping_add(i as u64);
            let workload = match rng.gen_range(0..4u32) {
                0 => Workload::Dmr {
                    triangles: rng.gen_range(40..160),
                    seed: job_seed,
                },
                1 => Workload::Sp {
                    vars: rng.gen_range(20..60),
                    clauses: rng.gen_range(60..180),
                    k: 3,
                    max_sweeps: 30,
                    seed: job_seed,
                },
                2 => Workload::Pta {
                    vars: rng.gen_range(20..60),
                    constraints: rng.gen_range(50..150),
                    seed: job_seed,
                },
                _ => Workload::Mst {
                    nodes: rng.gen_range(40..160),
                    edges: rng.gen_range(120..480),
                    seed: job_seed,
                },
            };
            let priority = match rng.gen_range(0..10u32) {
                0..=1 => Priority::High,
                2..=7 => Priority::Normal,
                _ => Priority::Low,
            };
            let mut spec = JobSpec::new(tenant, workload)
                .with_priority(priority)
                .with_retry(rng.gen_range(1..4u32));
            if rng.gen_bool(0.3) {
                spec = spec.with_deadline(Duration::from_millis(rng.gen_range(50..2_000u64)));
            }
            spec
        })
        .collect()
}

/// Render a generated workload as a replay file (with a header comment).
pub fn render_file(specs: &[JobSpec], seed: u64) -> String {
    let mut out = format!(
        "# morph-serve replay: {} jobs, generator seed {}\n\
         # <tenant> <priority> <deadline_ms|-> <max_attempts> <algo> <args…>\n",
        specs.len(),
        seed
    );
    for s in specs {
        out.push_str(&encode_line(s));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_workloads_roundtrip_through_the_file_format() {
        let specs = generate_mixed(32, 42);
        assert_eq!(specs.len(), 32);
        let text = render_file(&specs, 42);
        let parsed = parse_file(&text).expect("generated file must parse");
        assert_eq!(parsed.len(), specs.len());
        for (a, b) in specs.iter().zip(&parsed) {
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.deadline, b.deadline);
            assert_eq!(a.retry, b.retry);
            assert_eq!(a.workload, b.workload);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_mixed(16, 7);
        let b = generate_mixed(16, 7);
        let c = generate_mixed(16, 8);
        assert_eq!(
            a.iter().map(|s| s.workload.encode()).collect::<Vec<_>>(),
            b.iter().map(|s| s.workload.encode()).collect::<Vec<_>>()
        );
        assert_ne!(
            a.iter().map(|s| s.workload.encode()).collect::<Vec<_>>(),
            c.iter().map(|s| s.workload.encode()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mixed_generation_covers_all_pipelines_and_tenants() {
        let specs = generate_mixed(64, 3);
        let algos: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.workload.algo()).collect();
        assert_eq!(algos.len(), 4, "all four pipelines should appear: {algos:?}");
        let tenants: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.tenant.as_str()).collect();
        assert_eq!(tenants.len(), 3, "all three tenants should appear");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_file("# ok\nacme high - 2 dmr 100 1\nbogus\n").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse_file("acme urgent - 2 dmr 100 1\n").unwrap_err();
        assert!(err.reason.contains("priority"), "{}", err.reason);
        let err = parse_file("acme high 12x 2 dmr 100 1\n").unwrap_err();
        assert!(err.reason.contains("deadline"), "{}", err.reason);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let specs = parse_file(
            "\n# header\nacme high - 2 dmr 100 1  # trailing comment\n\n  \nblue low 250 1 mst 50 150 9\n",
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].tenant, "acme");
        assert_eq!(specs[1].deadline, Some(Duration::from_millis(250)));
    }
}
