//! Workload-file replay: a plain-text job list the `morph-serve` binary
//! feeds into a pool, plus a seeded generator for mixed soak workloads.
//!
//! Line format (whitespace-separated, `#` starts a comment):
//!
//! ```text
//! <tenant> <priority> <deadline_ms|-> <max_attempts> <algo> <args…>
//! ```
//!
//! where `<algo> <args…>` is [`Workload::encode`]'s format:
//!
//! ```text
//! dmr <triangles> <seed>
//! sp  <vars> <clauses> <k> <max_sweeps> <seed>
//! pta <vars> <constraints> <seed>
//! mst <nodes> <edges> <seed>
//! ```

use crate::job::{JobSpec, Priority, Workload};
use morph_gpu_sim::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// A replay-file parse failure, with the 1-based line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

/// Encode one spec as a replay line.
pub fn encode_line(spec: &JobSpec) -> String {
    format!(
        "{} {} {} {} {}",
        spec.tenant,
        spec.priority.as_str(),
        spec.deadline
            .map_or_else(|| "-".to_string(), |d| d.as_millis().to_string()),
        spec.retry.max_attempts,
        spec.workload.encode()
    )
}

/// Parse a whole replay file. Blank lines and `#` comments are skipped.
pub fn parse_file(text: &str) -> Result<Vec<JobSpec>, ParseError> {
    let mut specs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        specs.push(parse_line(line).map_err(|reason| ParseError {
            line: i + 1,
            reason,
        })?);
    }
    Ok(specs)
}

fn parse_line(line: &str) -> Result<JobSpec, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    if fields.len() < 5 {
        return Err(format!(
            "expected `<tenant> <priority> <deadline_ms|-> <max_attempts> <algo> <args…>`, got {} field(s)",
            fields.len()
        ));
    }
    let tenant = fields[0].to_string();
    let priority =
        Priority::parse(fields[1]).ok_or_else(|| format!("unknown priority {:?}", fields[1]))?;
    let deadline = match fields[2] {
        "-" => None,
        ms => Some(Duration::from_millis(
            ms.parse::<u64>()
                .map_err(|_| format!("bad deadline_ms {ms:?}"))?,
        )),
    };
    let max_attempts: u32 = fields[3]
        .parse()
        .map_err(|_| format!("bad max_attempts {:?}", fields[3]))?;
    let workload = Workload::parse(&fields[4..])
        .ok_or_else(|| format!("bad workload spec {:?}", fields[4..].join(" ")))?;
    let mut spec = JobSpec::new(tenant, workload)
        .with_priority(priority)
        .with_retry(max_attempts);
    if let Some(d) = deadline {
        spec = spec.with_deadline(d);
    }
    Ok(spec)
}

/// Generate a seeded mixed workload: `jobs` specs spread across three
/// tenants and all four pipelines, with a sprinkle of priorities and
/// deadlines. Sizes are kept small enough that a soak of ~64 jobs runs
/// in CI time on the simulator.
pub fn generate_mixed(jobs: usize, seed: u64) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tenants = ["acme", "blue", "cyan"];
    (0..jobs)
        .map(|i| {
            let tenant = tenants[rng.gen_range(0..tenants.len())];
            let job_seed = seed.wrapping_mul(1_000).wrapping_add(i as u64);
            let workload = match rng.gen_range(0..4u32) {
                0 => Workload::Dmr {
                    triangles: rng.gen_range(40..160),
                    seed: job_seed,
                },
                1 => Workload::Sp {
                    vars: rng.gen_range(20..60),
                    clauses: rng.gen_range(60..180),
                    k: 3,
                    max_sweeps: 30,
                    seed: job_seed,
                },
                2 => Workload::Pta {
                    vars: rng.gen_range(20..60),
                    constraints: rng.gen_range(50..150),
                    seed: job_seed,
                },
                _ => Workload::Mst {
                    nodes: rng.gen_range(40..160),
                    edges: rng.gen_range(120..480),
                    seed: job_seed,
                },
            };
            let priority = match rng.gen_range(0..10u32) {
                0..=1 => Priority::High,
                2..=7 => Priority::Normal,
                _ => Priority::Low,
            };
            let mut spec = JobSpec::new(tenant, workload)
                .with_priority(priority)
                .with_retry(rng.gen_range(1..4u32));
            if rng.gen_bool(0.3) {
                spec = spec.with_deadline(Duration::from_millis(rng.gen_range(50..2_000u64)));
            }
            spec
        })
        .collect()
}

/// How long a chaos-injected barrier stall holds a worker. Anything
/// comfortably above the serving hang budget works; the `morph-serve`
/// CLI pairs this with a budget of [`CHAOS_HANG_BUDGET`].
pub const CHAOS_STALL: Duration = Duration::from_millis(150);

/// The hang budget chaos mode arms the pool's watchdog with — small
/// enough that a [`CHAOS_STALL`] is reliably detected, large enough that
/// no legitimate soak-sized launch trips it.
pub const CHAOS_HANG_BUDGET: Duration = Duration::from_millis(75);

/// Decorate a workload with a deterministic chaos schedule. Fault plans
/// are not part of the replay-file format (they describe the *run*, not
/// the *work*), so chaos is applied at load time, keyed by job index:
///
/// * `i % 4 == 0` — device loss at launch 2: iterations 0 and 1 have
///   checkpointed by then (with `checkpoint_every = 1`), so the eviction
///   exercises a genuine cross-slot resume.
/// * `i % 8 == 1` — a hung kernel: one barrier stall of [`CHAOS_STALL`],
///   long enough that the hung-job watchdog evicts the job.
/// * `i % 4 == 2` — seeded kernel panics and allocation denials plus one
///   extra device loss ([`FaultPlan::seeded_chaos`], stall disabled —
///   the hang path is covered by the class above).
/// * everything else runs clean, so the soak also measures the fault-free
///   path under contention.
pub fn apply_chaos(specs: &mut [JobSpec], seed: u64) {
    for (i, spec) in specs.iter_mut().enumerate() {
        let plan = match i % 4 {
            0 => Some(FaultPlan::new().with_device_loss(2, 0, 0)),
            1 if i % 8 == 1 => {
                Some(FaultPlan::new().with_barrier_stall(1, 0, 0, CHAOS_STALL))
            }
            2 => Some(FaultPlan::seeded_chaos(
                seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                6,
                8,
                64,
                4,
                Duration::ZERO,
            )),
            _ => None,
        };
        if let Some(plan) = plan {
            spec.fault_plan = Some(Arc::new(plan));
        }
    }
}

/// [`generate_mixed`] followed by [`apply_chaos`] with the same seed —
/// the input of the `chaos-soak` CI job.
pub fn generate_chaos(jobs: usize, seed: u64) -> Vec<JobSpec> {
    let mut specs = generate_mixed(jobs, seed);
    apply_chaos(&mut specs, seed);
    specs
}

/// Render a generated workload as a replay file (with a header comment).
pub fn render_file(specs: &[JobSpec], seed: u64) -> String {
    let mut out = format!(
        "# morph-serve replay: {} jobs, generator seed {}\n\
         # <tenant> <priority> <deadline_ms|-> <max_attempts> <algo> <args…>\n",
        specs.len(),
        seed
    );
    for s in specs {
        out.push_str(&encode_line(s));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_workloads_roundtrip_through_the_file_format() {
        let specs = generate_mixed(32, 42);
        assert_eq!(specs.len(), 32);
        let text = render_file(&specs, 42);
        let parsed = parse_file(&text).expect("generated file must parse");
        assert_eq!(parsed.len(), specs.len());
        for (a, b) in specs.iter().zip(&parsed) {
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.deadline, b.deadline);
            assert_eq!(a.retry, b.retry);
            assert_eq!(a.workload, b.workload);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_mixed(16, 7);
        let b = generate_mixed(16, 7);
        let c = generate_mixed(16, 8);
        assert_eq!(
            a.iter().map(|s| s.workload.encode()).collect::<Vec<_>>(),
            b.iter().map(|s| s.workload.encode()).collect::<Vec<_>>()
        );
        assert_ne!(
            a.iter().map(|s| s.workload.encode()).collect::<Vec<_>>(),
            c.iter().map(|s| s.workload.encode()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mixed_generation_covers_all_pipelines_and_tenants() {
        let specs = generate_mixed(64, 3);
        let algos: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.workload.algo()).collect();
        assert_eq!(algos.len(), 4, "all four pipelines should appear: {algos:?}");
        let tenants: std::collections::BTreeSet<&str> =
            specs.iter().map(|s| s.tenant.as_str()).collect();
        assert_eq!(tenants.len(), 3, "all three tenants should appear");
    }

    #[test]
    fn chaos_decoration_is_deterministic_and_leaves_the_work_alone() {
        let a = generate_chaos(32, 9);
        let b = generate_chaos(32, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fault_plan.is_some(), y.fault_plan.is_some());
            assert_eq!(x.workload, y.workload);
        }
        // Classes land where the index schedule says.
        assert!(a[0].fault_plan.is_some(), "i%4==0 gets a device loss");
        assert!(a[1].fault_plan.is_some(), "i%8==1 gets a hung kernel");
        assert!(a[2].fault_plan.is_some(), "i%4==2 gets seeded chaos");
        assert!(a[3].fault_plan.is_none(), "i%4==3 runs clean");
        assert!(a[5].fault_plan.is_none(), "i%4==1 without i%8==1 runs clean");
        // Chaos decorates the run, not the work: the replay file is
        // byte-identical with and without it.
        let plain = generate_mixed(32, 9);
        assert_eq!(render_file(&plain, 9), render_file(&a, 9));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_file("# ok\nacme high - 2 dmr 100 1\nbogus\n").unwrap_err();
        assert_eq!(err.line, 3);
        let err = parse_file("acme urgent - 2 dmr 100 1\n").unwrap_err();
        assert!(err.reason.contains("priority"), "{}", err.reason);
        let err = parse_file("acme high 12x 2 dmr 100 1\n").unwrap_err();
        assert!(err.reason.contains("deadline"), "{}", err.reason);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let specs = parse_file(
            "\n# header\nacme high - 2 dmr 100 1  # trailing comment\n\n  \nblue low 250 1 mst 50 150 9\n",
        )
        .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].tenant, "acme");
        assert_eq!(specs[1].deadline, Some(Duration::from_millis(250)));
    }
}
