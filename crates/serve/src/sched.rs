//! Admission control and the deterministic pick rule.
//!
//! The ready queue is **bounded**: `admit` refuses new work once
//! `capacity` jobs are waiting ([`AdmitError::Saturated`]) so a slow pool
//! pushes back on producers instead of buffering unboundedly. Requeues
//! (retry after a transient fault) bypass the bound — a job that was
//! already admitted is never lost to backpressure.
//!
//! The pick rule is a pure function of queue contents plus the tenants'
//! accrued device time, so the schedule is deterministic for a given
//! arrival/completion order:
//!
//! 1. priority class (high before normal before low),
//! 2. tenant fair share — least accrued device-µs first, so a tenant
//!    that has monopolised the pool yields to starved ones,
//! 3. earliest absolute deadline (best-effort jobs last),
//! 4. submission sequence (FIFO tiebreak).

use crate::job::{Job, JobId};
use std::collections::BTreeMap;

/// Backoff floor for the first requeue, in µs.
const BACKOFF_BASE_US: u64 = 2_000;
/// Backoff ceiling, in µs — well under the watchdog/deadline scales so
/// delay never masquerades as a hang.
const BACKOFF_CAP_US: u64 = 100_000;

/// Bounded exponential backoff with deterministic jitter for a job's
/// `n`-th requeue (`n >= 1`). The exponential ladder doubles from
/// [`BACKOFF_BASE_US`] and saturates at [`BACKOFF_CAP_US`]; the returned
/// delay is drawn uniformly from `[cap/2, cap)` (full-jitter halved, so
/// colliding jobs decorrelate without ever returning a zero delay). The
/// jitter PRNG is SplitMix64 seeded from `(job, n)` — the same job and
/// attempt always back off identically, keeping replays deterministic.
pub fn backoff_delay_us(job: JobId, n: u32) -> u64 {
    let n = n.max(1);
    let cap = BACKOFF_CAP_US.min(BACKOFF_BASE_US << (n - 1).min(10));
    let mut s = job
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(n));
    s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    cap / 2 + z % (cap / 2).max(1)
}

/// Why a submission was refused at the door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The bounded queue is full; resubmit after draining.
    Saturated { capacity: usize },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Saturated { capacity } => {
                write!(f, "admission queue saturated ({capacity} jobs waiting)")
            }
        }
    }
}

/// The waiting room. Not thread-safe on its own — the pool wraps it in
/// its state mutex; keeping it pure makes the scheduling policy testable
/// without threads.
#[derive(Debug)]
pub(crate) struct ReadyQueue {
    capacity: usize,
    jobs: Vec<Job>,
}

impl ReadyQueue {
    pub fn new(capacity: usize) -> Self {
        ReadyQueue {
            capacity: capacity.max(1),
            jobs: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Admit a fresh submission, enforcing the bound. On saturation the
    /// job comes back (boxed — it is a large value) with the error.
    pub fn admit(&mut self, job: Job) -> Result<(), Box<(Job, AdmitError)>> {
        if self.jobs.len() >= self.capacity {
            let capacity = self.capacity;
            return Err(Box::new((job, AdmitError::Saturated { capacity })));
        }
        self.jobs.push(job);
        Ok(())
    }

    /// Put a job back after a retryable failure. Bypasses the bound: the
    /// job was already admitted once and must not be lost.
    pub fn requeue(&mut self, job: Job) {
        self.jobs.push(job);
    }

    /// Remove and return the next job under the pick rule, given each
    /// tenant's accrued device time in µs (absent = 0). `device` is the
    /// picking slot: a job evicted from that slot (`avoid_device`) is
    /// skipped so its resume lands elsewhere — unless `sole_device` is
    /// set, in which case there is nowhere else and the rule is waived.
    /// `now_us` gates backed-off requeues: a job whose `not_before_us`
    /// lies in the future is invisible to this pick.
    pub fn pick(
        &mut self,
        tenant_run_us: &BTreeMap<String, u64>,
        device: u64,
        sole_device: bool,
        now_us: u64,
    ) -> Option<Job> {
        let idx = self.pick_index(tenant_run_us, device, sole_device, now_us)?;
        Some(self.jobs.swap_remove(idx))
    }

    /// Earliest `not_before_us` among jobs this pick skipped purely for
    /// backoff — how long the caller should wait before retrying a pick
    /// that came up empty. `None` when nothing is backing off.
    pub fn soonest_ready(&self, now_us: u64) -> Option<u64> {
        self.jobs
            .iter()
            .filter(|j| j.not_before_us > now_us)
            .map(|j| j.not_before_us)
            .min()
    }

    fn pick_index(
        &self,
        tenant_run_us: &BTreeMap<String, u64>,
        device: u64,
        sole_device: bool,
        now_us: u64,
    ) -> Option<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| sole_device || j.avoid_device != Some(device))
            .filter(|(_, j)| j.not_before_us <= now_us)
            .min_by_key(|(_, j)| {
                (
                    j.spec.priority,
                    tenant_run_us.get(&j.spec.tenant).copied().unwrap_or(0),
                    j.spec.tenant.clone(),
                    // 0 (no deadline) must sort *after* every real deadline.
                    if j.deadline_us == 0 {
                        u64::MAX
                    } else {
                        j.deadline_us
                    },
                    j.seq,
                )
            })
            .map(|(i, _)| i)
    }

    /// Remove a queued job by id (cancellation before it reached a
    /// device). Returns the job so the pool can emit its terminal event.
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let idx = self.jobs.iter().position(|j| j.id == id)?;
        Some(self.jobs.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, Priority, RetryPolicy, Workload};
    use morph_core::CancelToken;
    use std::collections::BTreeMap;

    fn job(id: JobId, tenant: &str, priority: Priority, deadline_us: u64) -> Job {
        Job {
            id,
            spec: JobSpec {
                tenant: tenant.into(),
                priority,
                deadline: None,
                retry: RetryPolicy::default(),
                workload: Workload::Mst {
                    nodes: 10,
                    edges: 20,
                    seed: id,
                },
                fault_plan: None,
            },
            seq: id,
            attempts: 0,
            cancel: CancelToken::new(),
            deadline_us,
            evictions: 0,
            avoid_device: None,
            not_before_us: 0,
        }
    }

    fn no_usage() -> BTreeMap<String, u64> {
        BTreeMap::new()
    }

    #[test]
    fn admission_bound_is_enforced_but_requeue_bypasses() {
        let mut q = ReadyQueue::new(2);
        q.admit(job(1, "a", Priority::Normal, 0)).unwrap();
        q.admit(job(2, "a", Priority::Normal, 0)).unwrap();
        let (bounced, err) = *q.admit(job(3, "a", Priority::Normal, 0)).unwrap_err();
        assert_eq!(err, AdmitError::Saturated { capacity: 2 });
        assert_eq!(bounced.id, 3);
        // A requeued job must never bounce.
        q.requeue(bounced);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn higher_priority_wins_regardless_of_order() {
        let mut q = ReadyQueue::new(8);
        q.admit(job(1, "a", Priority::Low, 0)).unwrap();
        q.admit(job(2, "a", Priority::High, 0)).unwrap();
        q.admit(job(3, "a", Priority::Normal, 0)).unwrap();
        assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, 2);
        assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, 3);
        assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, 1);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mut q = ReadyQueue::new(8);
        for id in 1..=4 {
            q.admit(job(id, "a", Priority::Normal, 0)).unwrap();
        }
        for id in 1..=4 {
            assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, id);
        }
    }

    #[test]
    fn starved_tenant_preempts_heavy_one() {
        let mut q = ReadyQueue::new(8);
        q.admit(job(1, "heavy", Priority::Normal, 0)).unwrap();
        q.admit(job(2, "light", Priority::Normal, 0)).unwrap();
        let mut usage = BTreeMap::new();
        usage.insert("heavy".to_string(), 10_000u64);
        // `light` has accrued nothing, so its later submission runs first.
        assert_eq!(q.pick(&usage, 1, true, 0).unwrap().id, 2);
        assert_eq!(q.pick(&usage, 1, true, 0).unwrap().id, 1);
    }

    #[test]
    fn earlier_deadline_breaks_fair_share_ties() {
        let mut q = ReadyQueue::new(8);
        q.admit(job(1, "a", Priority::Normal, 0)).unwrap(); // best-effort
        q.admit(job(2, "a", Priority::Normal, 9_000)).unwrap();
        q.admit(job(3, "a", Priority::Normal, 4_000)).unwrap();
        assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, 3);
        assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, 2);
        assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, 1);
    }

    #[test]
    fn evicted_jobs_avoid_their_old_slot_when_another_exists() {
        let mut q = ReadyQueue::new(8);
        let mut evicted = job(1, "a", Priority::High, 0);
        evicted.avoid_device = Some(2);
        q.admit(evicted).unwrap();
        q.admit(job(2, "a", Priority::Normal, 0)).unwrap();
        // Device 2 skips the evicted job despite its higher priority …
        assert_eq!(q.pick(&no_usage(), 2, false, 0).unwrap().id, 2);
        // … and with only the avoided job left, returns nothing so a
        // different slot can take it.
        assert!(q.pick(&no_usage(), 2, false, 0).is_none());
        assert_eq!(q.len(), 1);
        // Any other device picks it normally.
        assert_eq!(q.pick(&no_usage(), 1, false, 0).unwrap().id, 1);
        // A sole device waives the rule — better the same slot than never.
        let mut solo = job(3, "a", Priority::Normal, 0);
        solo.avoid_device = Some(1);
        q.admit(solo).unwrap();
        assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, 3);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_monotone_in_cap() {
        for job in [1u64, 7, 1000] {
            for n in 1..=12u32 {
                let d = backoff_delay_us(job, n);
                assert_eq!(d, backoff_delay_us(job, n), "deterministic");
                let cap = 100_000u64.min(2_000u64 << (n - 1).min(10));
                assert!(d >= cap / 2 && d < cap, "n={n}: {d} outside [{}, {cap})", cap / 2);
            }
            // Saturated: the ceiling holds however many requeues pile up.
            assert!(backoff_delay_us(job, 40) < 100_000);
        }
        // Different jobs jitter apart (decorrelation, not a fixed ladder).
        assert_ne!(backoff_delay_us(1, 6), backoff_delay_us(2, 6));
    }

    #[test]
    fn backed_off_jobs_are_invisible_until_their_time() {
        let mut q = ReadyQueue::new(8);
        let mut delayed = job(1, "a", Priority::High, 0);
        delayed.not_before_us = 5_000;
        q.admit(delayed).unwrap();
        q.admit(job(2, "a", Priority::Low, 0)).unwrap();
        // Before the backoff expires the low-priority job runs instead …
        assert_eq!(q.pick(&no_usage(), 1, true, 1_000).unwrap().id, 2);
        assert!(q.pick(&no_usage(), 1, true, 1_000).is_none());
        assert_eq!(q.soonest_ready(1_000), Some(5_000));
        // … and at its stamp the job is schedulable again.
        assert_eq!(q.pick(&no_usage(), 1, true, 5_000).unwrap().id, 1);
        assert_eq!(q.soonest_ready(5_000), None);
    }

    #[test]
    fn remove_cancels_a_queued_job() {
        let mut q = ReadyQueue::new(8);
        q.admit(job(1, "a", Priority::Normal, 0)).unwrap();
        q.admit(job(2, "a", Priority::Normal, 0)).unwrap();
        assert_eq!(q.remove(1).unwrap().id, 1);
        assert!(q.remove(1).is_none());
        assert_eq!(q.pick(&no_usage(), 1, true, 0).unwrap().id, 2);
        assert!(q.is_empty());
    }
}
