//! Admission control and the deterministic pick rule.
//!
//! The ready queue is **bounded**: `admit` refuses new work once
//! `capacity` jobs are waiting ([`AdmitError::Saturated`]) so a slow pool
//! pushes back on producers instead of buffering unboundedly. Requeues
//! (retry after a transient fault) bypass the bound — a job that was
//! already admitted is never lost to backpressure.
//!
//! The pick rule is a pure function of queue contents plus the tenants'
//! accrued device time, so the schedule is deterministic for a given
//! arrival/completion order:
//!
//! 1. priority class (high before normal before low),
//! 2. tenant fair share — least accrued device-µs first, so a tenant
//!    that has monopolised the pool yields to starved ones,
//! 3. earliest absolute deadline (best-effort jobs last),
//! 4. submission sequence (FIFO tiebreak).

use crate::job::{Job, JobId};
use std::collections::BTreeMap;

/// Why a submission was refused at the door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The bounded queue is full; resubmit after draining.
    Saturated { capacity: usize },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Saturated { capacity } => {
                write!(f, "admission queue saturated ({capacity} jobs waiting)")
            }
        }
    }
}

/// The waiting room. Not thread-safe on its own — the pool wraps it in
/// its state mutex; keeping it pure makes the scheduling policy testable
/// without threads.
#[derive(Debug)]
pub(crate) struct ReadyQueue {
    capacity: usize,
    jobs: Vec<Job>,
}

impl ReadyQueue {
    pub fn new(capacity: usize) -> Self {
        ReadyQueue {
            capacity: capacity.max(1),
            jobs: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Admit a fresh submission, enforcing the bound. On saturation the
    /// job comes back (boxed — it is a large value) with the error.
    pub fn admit(&mut self, job: Job) -> Result<(), Box<(Job, AdmitError)>> {
        if self.jobs.len() >= self.capacity {
            let capacity = self.capacity;
            return Err(Box::new((job, AdmitError::Saturated { capacity })));
        }
        self.jobs.push(job);
        Ok(())
    }

    /// Put a job back after a retryable failure. Bypasses the bound: the
    /// job was already admitted once and must not be lost.
    pub fn requeue(&mut self, job: Job) {
        self.jobs.push(job);
    }

    /// Remove and return the next job under the pick rule, given each
    /// tenant's accrued device time in µs (absent = 0). `device` is the
    /// picking slot: a job evicted from that slot (`avoid_device`) is
    /// skipped so its resume lands elsewhere — unless `sole_device` is
    /// set, in which case there is nowhere else and the rule is waived.
    pub fn pick(
        &mut self,
        tenant_run_us: &BTreeMap<String, u64>,
        device: u64,
        sole_device: bool,
    ) -> Option<Job> {
        let idx = self.pick_index(tenant_run_us, device, sole_device)?;
        Some(self.jobs.swap_remove(idx))
    }

    fn pick_index(
        &self,
        tenant_run_us: &BTreeMap<String, u64>,
        device: u64,
        sole_device: bool,
    ) -> Option<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| sole_device || j.avoid_device != Some(device))
            .min_by_key(|(_, j)| {
                (
                    j.spec.priority,
                    tenant_run_us.get(&j.spec.tenant).copied().unwrap_or(0),
                    j.spec.tenant.clone(),
                    // 0 (no deadline) must sort *after* every real deadline.
                    if j.deadline_us == 0 {
                        u64::MAX
                    } else {
                        j.deadline_us
                    },
                    j.seq,
                )
            })
            .map(|(i, _)| i)
    }

    /// Remove a queued job by id (cancellation before it reached a
    /// device). Returns the job so the pool can emit its terminal event.
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let idx = self.jobs.iter().position(|j| j.id == id)?;
        Some(self.jobs.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, Priority, RetryPolicy, Workload};
    use morph_core::CancelToken;
    use std::collections::BTreeMap;

    fn job(id: JobId, tenant: &str, priority: Priority, deadline_us: u64) -> Job {
        Job {
            id,
            spec: JobSpec {
                tenant: tenant.into(),
                priority,
                deadline: None,
                retry: RetryPolicy::default(),
                workload: Workload::Mst {
                    nodes: 10,
                    edges: 20,
                    seed: id,
                },
                fault_plan: None,
            },
            seq: id,
            attempts: 0,
            cancel: CancelToken::new(),
            deadline_us,
            evictions: 0,
            avoid_device: None,
        }
    }

    fn no_usage() -> BTreeMap<String, u64> {
        BTreeMap::new()
    }

    #[test]
    fn admission_bound_is_enforced_but_requeue_bypasses() {
        let mut q = ReadyQueue::new(2);
        q.admit(job(1, "a", Priority::Normal, 0)).unwrap();
        q.admit(job(2, "a", Priority::Normal, 0)).unwrap();
        let (bounced, err) = *q.admit(job(3, "a", Priority::Normal, 0)).unwrap_err();
        assert_eq!(err, AdmitError::Saturated { capacity: 2 });
        assert_eq!(bounced.id, 3);
        // A requeued job must never bounce.
        q.requeue(bounced);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn higher_priority_wins_regardless_of_order() {
        let mut q = ReadyQueue::new(8);
        q.admit(job(1, "a", Priority::Low, 0)).unwrap();
        q.admit(job(2, "a", Priority::High, 0)).unwrap();
        q.admit(job(3, "a", Priority::Normal, 0)).unwrap();
        assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, 2);
        assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, 3);
        assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, 1);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        let mut q = ReadyQueue::new(8);
        for id in 1..=4 {
            q.admit(job(id, "a", Priority::Normal, 0)).unwrap();
        }
        for id in 1..=4 {
            assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, id);
        }
    }

    #[test]
    fn starved_tenant_preempts_heavy_one() {
        let mut q = ReadyQueue::new(8);
        q.admit(job(1, "heavy", Priority::Normal, 0)).unwrap();
        q.admit(job(2, "light", Priority::Normal, 0)).unwrap();
        let mut usage = BTreeMap::new();
        usage.insert("heavy".to_string(), 10_000u64);
        // `light` has accrued nothing, so its later submission runs first.
        assert_eq!(q.pick(&usage, 1, true).unwrap().id, 2);
        assert_eq!(q.pick(&usage, 1, true).unwrap().id, 1);
    }

    #[test]
    fn earlier_deadline_breaks_fair_share_ties() {
        let mut q = ReadyQueue::new(8);
        q.admit(job(1, "a", Priority::Normal, 0)).unwrap(); // best-effort
        q.admit(job(2, "a", Priority::Normal, 9_000)).unwrap();
        q.admit(job(3, "a", Priority::Normal, 4_000)).unwrap();
        assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, 3);
        assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, 2);
        assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, 1);
    }

    #[test]
    fn evicted_jobs_avoid_their_old_slot_when_another_exists() {
        let mut q = ReadyQueue::new(8);
        let mut evicted = job(1, "a", Priority::High, 0);
        evicted.avoid_device = Some(2);
        q.admit(evicted).unwrap();
        q.admit(job(2, "a", Priority::Normal, 0)).unwrap();
        // Device 2 skips the evicted job despite its higher priority …
        assert_eq!(q.pick(&no_usage(), 2, false).unwrap().id, 2);
        // … and with only the avoided job left, returns nothing so a
        // different slot can take it.
        assert!(q.pick(&no_usage(), 2, false).is_none());
        assert_eq!(q.len(), 1);
        // Any other device picks it normally.
        assert_eq!(q.pick(&no_usage(), 1, false).unwrap().id, 1);
        // A sole device waives the rule — better the same slot than never.
        let mut solo = job(3, "a", Priority::Normal, 0);
        solo.avoid_device = Some(1);
        q.admit(solo).unwrap();
        assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, 3);
    }

    #[test]
    fn remove_cancels_a_queued_job() {
        let mut q = ReadyQueue::new(8);
        q.admit(job(1, "a", Priority::Normal, 0)).unwrap();
        q.admit(job(2, "a", Priority::Normal, 0)).unwrap();
        assert_eq!(q.remove(1).unwrap().id, 1);
        assert!(q.remove(1).is_none());
        assert_eq!(q.pick(&no_usage(), 1, true).unwrap().id, 2);
        assert!(q.is_empty());
    }
}
