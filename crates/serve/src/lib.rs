//! # morph-serve — multi-tenant job scheduling over a virtual-device pool
//!
//! The paper evaluates each morph algorithm in isolation; a GPU in
//! production is a *shared* resource. This crate adds the serving layer:
//! many tenants submit [`JobSpec`]s wrapping any of the four pipelines,
//! and a pool of independent simulated devices runs them concurrently —
//! one `VirtualGpu` per slot, each driven through `morph-core`'s
//! recovering host loop, so every job individually keeps the fault
//! tolerance, rescue ladder and (with `morph-check`) sanitizers of the
//! single-job stack.
//!
//! * [`job`] — the job model: workloads, priorities, deadlines, retry
//!   policy, and the [`DriveError`](morph_core::DriveError) → retryable /
//!   permanent / cancelled classification.
//! * [`sched`] — bounded admission (backpressure via
//!   [`AdmitError::Saturated`]) and the deterministic pick rule:
//!   priority, then tenant fair share by accrued device time, then
//!   earliest deadline, then FIFO.
//! * [`pool`] — the executor: one host thread per device slot;
//!   cooperative cancellation via `morph-core`'s `CancelToken`, checked
//!   at every host-action boundary, so cancelling an in-flight job frees
//!   its slot at the next launch boundary. Resilience lives here too:
//!   device-loss/hang eviction with cross-slot resume from checkpoints,
//!   per-slot quarantine circuit breakers, and the hung-job watchdog
//!   (see the module docs for the failure-domain model).
//! * [`replay`] — a plain-text workload file format plus a seeded mixed
//!   generator (the CI soak input) and a deterministic chaos decorator
//!   ([`apply_chaos`]) layering device-loss, hung-kernel and kernel-fault
//!   schedules onto any workload.
//! * [`summary`] — end-of-run accounting folded from the trace stream:
//!   throughput, wait/turnaround, SLO misses, per-tenant fairness, and
//!   the `lost`/`dup` integrity counters.
//!
//! Observability rides on `morph-trace`: the pool emits
//! `TraceEvent::Job` lifecycle events and tags every engine/recovery
//! event with the owning job via `Tracer::for_job`, so one JSONL stream
//! from a busy pool can be partitioned back into per-job traces. On top
//! of the stream sits the *live introspection plane*: an embedded
//! dependency-free HTTP server ([`ServeConfig::http_addr`]) exposing
//! `/metrics` (Prometheus exposition), `/healthz` (circuit-breaker slot
//! states — the same source [`ServeSummary`] folds, so live and
//! post-mortem views agree) and `/jobs` (live job table as JSON); an
//! always-on in-memory flight recorder
//! ([`FlightRecorder`](morph_trace::FlightRecorder)) that dumps the last
//! events per slot when something trips; and per-tenant SLO burn-rate
//! monitors ([`slo`]) that page on fast+slow window exhaustion.

mod http;
pub mod job;
pub mod journal;
pub mod pool;
pub mod replay;
pub mod sched;
pub mod slo;
pub mod summary;

pub use job::{
    classify, FailureClass, JobId, JobMetrics, JobSpec, JobStatus, Priority, RetryPolicy, Workload,
};
pub use journal::{
    fold as fold_journal, scan as scan_journal, JobLedger, Journal, JournalOutcome, JournalRecord,
    JournalScan, RecoveryStats,
};
pub use pool::{MorphServe, ServeConfig, SlotHealthSnapshot};
pub use replay::{
    apply_chaos, encode_line, generate_chaos, generate_mixed, parse_file, render_file, ParseError,
    CHAOS_HANG_BUDGET, CHAOS_STALL,
};
pub use sched::AdmitError;
pub use slo::{BurnSnapshot, SloAlert, SloConfig, SloMonitor, SloObservation};
pub use summary::ServeSummary;
