//! The job model: what a tenant submits and what comes back.
//!
//! A [`JobSpec`] wraps one [`Workload`] (any of the four morph pipelines
//! plus its `morph-workloads` generator parameters) with the serving
//! metadata the scheduler needs — tenant, priority class, optional
//! deadline, retry budget — and an optional [`FaultPlan`] for chaos runs.
//! Running a job is pure with respect to the pool: [`Workload::run`]
//! builds its input from the seed, drives the pipeline through
//! `drive_recovering` via the pipeline's `try_*` entry point, and maps the
//! outcome into [`JobMetrics`]. Failure classification ([`classify`])
//! decides retryable vs. permanent, which the executor turns into
//! requeue-or-fail.

use morph_core::{CancelToken, DriveError, RecoveryOpts};
use morph_gpu_sim::FaultPlan;
use morph_sp::surveys::Surveys;
use morph_sp::FactorGraph;
use std::sync::Arc;
use std::time::Duration;

/// Monotone per-pool job identifier (also the trace attribution tag).
pub type JobId = u64;

/// Priority class; lower sorts first in the ready queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    High,
    #[default]
    Normal,
    Low,
}

impl Priority {
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// One runnable unit of work: a pipeline plus the generator parameters of
/// its input. Inputs are rebuilt from the seed on every attempt, so a
/// retry after a mid-flight fault starts from clean state — nothing
/// half-mutated leaks across attempts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Delaunay mesh refinement over a random mesh.
    Dmr { triangles: u32, seed: u64 },
    /// Survey propagation over a random k-SAT formula.
    Sp {
        vars: u32,
        clauses: u32,
        k: u32,
        max_sweeps: u32,
        seed: u64,
    },
    /// Andersen-style points-to over a synthetic constraint set.
    Pta {
        vars: u32,
        constraints: u32,
        seed: u64,
    },
    /// Boruvka MST over a random weighted graph.
    Mst { nodes: u32, edges: u32, seed: u64 },
}

impl Workload {
    /// Short pipeline name (trace detail, replay files, summaries).
    pub fn algo(&self) -> &'static str {
        match self {
            Workload::Dmr { .. } => "dmr",
            Workload::Sp { .. } => "sp",
            Workload::Pta { .. } => "pta",
            Workload::Mst { .. } => "mst",
        }
    }

    /// Replay-file encoding: `<algo> <args…>` (see `replay`).
    pub fn encode(&self) -> String {
        match self {
            Workload::Dmr { triangles, seed } => format!("dmr {triangles} {seed}"),
            Workload::Sp {
                vars,
                clauses,
                k,
                max_sweeps,
                seed,
            } => format!("sp {vars} {clauses} {k} {max_sweeps} {seed}"),
            Workload::Pta {
                vars,
                constraints,
                seed,
            } => format!("pta {vars} {constraints} {seed}"),
            Workload::Mst { nodes, edges, seed } => format!("mst {nodes} {edges} {seed}"),
        }
    }

    /// Inverse of [`Workload::encode`]: `fields[0]` is the algorithm,
    /// the rest its numeric arguments.
    pub fn parse(fields: &[&str]) -> Option<Workload> {
        fn num<T: std::str::FromStr>(s: &str) -> Option<T> {
            s.parse().ok()
        }
        match *fields.first()? {
            "dmr" if fields.len() == 3 => Some(Workload::Dmr {
                triangles: num(fields[1])?,
                seed: num(fields[2])?,
            }),
            "sp" if fields.len() == 6 => Some(Workload::Sp {
                vars: num(fields[1])?,
                clauses: num(fields[2])?,
                k: num(fields[3])?,
                max_sweeps: num(fields[4])?,
                seed: num(fields[5])?,
            }),
            "pta" if fields.len() == 4 => Some(Workload::Pta {
                vars: num(fields[1])?,
                constraints: num(fields[2])?,
                seed: num(fields[3])?,
            }),
            "mst" if fields.len() == 4 => Some(Workload::Mst {
                nodes: num(fields[1])?,
                edges: num(fields[2])?,
                seed: num(fields[3])?,
            }),
            _ => None,
        }
    }

    /// Build the input from the seed and drive the pipeline to completion
    /// on a fresh virtual device with `sms` SMs. The `recovery` options
    /// carry the per-job tracer, fault plan and cancellation token.
    pub fn run(&self, sms: usize, recovery: &RecoveryOpts) -> Result<JobMetrics, DriveError> {
        match *self {
            Workload::Dmr { triangles, seed } => {
                let mut mesh = morph_workloads::mesh::random_mesh::<f64>(triangles as usize, seed);
                let out = morph_dmr::gpu::try_refine_gpu(
                    &mut mesh,
                    morph_dmr::DmrOpts::default(),
                    sms,
                    recovery,
                )?;
                Ok(JobMetrics {
                    iterations: out.iterations as u64,
                    work_items: out.stats.refined as u64,
                    retries: out.retries as u64,
                })
            }
            Workload::Sp {
                vars,
                clauses,
                k,
                max_sweeps,
                seed,
            } => {
                let f = morph_workloads::ksat::random_ksat(
                    vars as usize,
                    clauses as usize,
                    k as usize,
                    seed,
                );
                let fg = FactorGraph::new(&f);
                let s = Surveys::init(&fg, seed);
                let (sweeps, _) =
                    morph_sp::gpu::try_propagate(&fg, &s, 1e-3, max_sweeps as usize, sms, recovery)?;
                Ok(JobMetrics {
                    iterations: sweeps as u64,
                    work_items: clauses as u64,
                    retries: 0,
                })
            }
            Workload::Pta {
                vars,
                constraints,
                seed,
            } => {
                let prob =
                    morph_workloads::pta::synthetic(vars as usize, constraints as usize, seed);
                let out = morph_pta::gpu::try_solve_with(
                    &prob,
                    morph_pta::gpu::PtaOpts::default(),
                    sms,
                    recovery,
                )?;
                Ok(JobMetrics {
                    iterations: out.iterations as u64,
                    work_items: constraints as u64,
                    retries: out.retries as u64,
                })
            }
            Workload::Mst { nodes, edges, seed } => {
                let g = morph_workloads::graphs::random_graph(nodes as usize, edges as usize, seed);
                let out = morph_mst::gpu::try_mst_with_stats(&g, sms, recovery)?;
                Ok(JobMetrics {
                    iterations: out.result.rounds as u64,
                    work_items: edges as u64,
                    retries: out.retries as u64,
                })
            }
        }
    }
}

/// What a finished job reports back (algorithm-level, pipeline-agnostic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobMetrics {
    /// Host do–while iterations (DMR/PTA), sweeps (SP) or rounds (MST).
    pub iterations: u64,
    /// Items processed: triangles refined, clauses, constraints, edges.
    pub work_items: u64,
    /// Launch retries absorbed by the recovering driver.
    pub retries: u64,
}

/// How many times the executor may *start* a job before a retryable
/// failure becomes permanent. `max_attempts == 1` means no retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 2 }
    }
}

/// Everything a tenant submits.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub tenant: String,
    pub priority: Priority,
    /// Relative deadline from submission; `None` = best-effort.
    pub deadline: Option<Duration>,
    pub retry: RetryPolicy,
    pub workload: Workload,
    /// Fault plan armed on the job's device for every attempt (the plan's
    /// launch counter lives in the `Arc`, so re-arming after a requeue
    /// resumes past already-fired faults instead of replaying them).
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl JobSpec {
    pub fn new(tenant: impl Into<String>, workload: Workload) -> Self {
        JobSpec {
            tenant: tenant.into(),
            priority: Priority::Normal,
            deadline: None,
            retry: RetryPolicy::default(),
            workload,
            fault_plan: None,
        }
    }

    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_retry(mut self, max_attempts: u32) -> Self {
        self.retry = RetryPolicy {
            max_attempts: max_attempts.max(1),
        };
        self
    }

    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Where a job is in its lifecycle, as observed through
/// [`crate::MorphServe::status`] / [`crate::MorphServe::wait`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a device slot.
    Queued,
    /// Running on the 1-based device slot.
    Running { device: u64 },
    Finished {
        metrics: JobMetrics,
    },
    Failed {
        attempts: u32,
        error: String,
        /// `true` when the failure class was permanent (no retry would
        /// help); `false` when the retry budget ran out.
        permanent: bool,
    },
    Cancelled,
}

impl JobStatus {
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running { .. })
    }
}

/// Failure classes the executor maps [`DriveError`] into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// Worth another attempt on a clean device: transient launch faults
    /// (the give-up path of the retry ladder) and livelocks, whose outcome
    /// depends on scheduling order and often clears on a re-run.
    Retryable,
    /// Deterministic given the input: capacity growth exhausted. The same
    /// workload would regrow the same buffers again.
    Permanent,
    /// The job's cancel token was raised; not a failure at all.
    Cancelled,
}

/// Map a driver give-up error into a retry decision.
pub fn classify(err: &DriveError) -> FailureClass {
    match err {
        DriveError::Launch { .. } => FailureClass::Retryable,
        DriveError::Livelock { .. } => FailureClass::Retryable,
        DriveError::RegrowsExhausted { .. } => FailureClass::Permanent,
        DriveError::Cancelled { .. } => FailureClass::Cancelled,
    }
}

/// Internal: a job as the pool tracks it.
#[derive(Debug)]
pub(crate) struct Job {
    pub id: JobId,
    pub spec: JobSpec,
    /// FIFO tiebreaker within a priority class.
    pub seq: u64,
    /// Attempts started so far.
    pub attempts: u32,
    /// Cancellation handle shared with the device running the job.
    pub cancel: CancelToken,
    /// Absolute deadline in epoch-µs (0 = none), fixed at submission.
    pub deadline_us: u64,
    /// Evictions suffered so far (device loss, hung-job watchdog).
    /// Budgeted separately from `attempts` — an eviction is the slot's
    /// fault, not the job's.
    pub evictions: u32,
    /// Slot the job was last evicted from: the scheduler steers the
    /// resume to a different device whenever another one exists.
    pub avoid_device: Option<u64>,
    /// Earliest epoch-µs the scheduler may pick this job again (0 = now).
    /// Stamped on requeue with a jittered exponential backoff so a
    /// crash-looping job cannot hot-spin a slot.
    pub not_before_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_high_first() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
    }

    #[test]
    fn priority_strings_roundtrip() {
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::parse(p.as_str()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
    }

    #[test]
    fn workload_encode_parse_roundtrip() {
        let cases = [
            Workload::Dmr {
                triangles: 500,
                seed: 7,
            },
            Workload::Sp {
                vars: 100,
                clauses: 350,
                k: 3,
                max_sweeps: 40,
                seed: 11,
            },
            Workload::Pta {
                vars: 60,
                constraints: 150,
                seed: 3,
            },
            Workload::Mst {
                nodes: 200,
                edges: 600,
                seed: 9,
            },
        ];
        for w in cases {
            let enc = w.encode();
            let fields: Vec<&str> = enc.split_whitespace().collect();
            assert_eq!(Workload::parse(&fields), Some(w), "encoding was {enc:?}");
        }
    }

    #[test]
    fn malformed_workloads_do_not_parse() {
        assert_eq!(Workload::parse(&[]), None);
        assert_eq!(Workload::parse(&["dmr", "500"]), None); // missing seed
        assert_eq!(Workload::parse(&["sp", "a", "b", "c", "d", "e"]), None);
        assert_eq!(Workload::parse(&["mst", "10", "20", "30", "40"]), None);
    }

    #[test]
    fn classification_matches_error_semantics() {
        assert_eq!(
            classify(&DriveError::Livelock {
                iteration: 1,
                rescues: 2
            }),
            FailureClass::Retryable
        );
        assert_eq!(
            classify(&DriveError::RegrowsExhausted {
                iteration: 1,
                regrows: 3
            }),
            FailureClass::Permanent
        );
        assert_eq!(
            classify(&DriveError::Cancelled { iteration: 0 }),
            FailureClass::Cancelled
        );
    }

    #[test]
    fn every_workload_runs_to_completion() {
        let recovery = RecoveryOpts::default();
        let jobs = [
            Workload::Dmr {
                triangles: 60,
                seed: 1,
            },
            Workload::Sp {
                vars: 40,
                clauses: 120,
                k: 3,
                max_sweeps: 30,
                seed: 2,
            },
            Workload::Pta {
                vars: 30,
                constraints: 80,
                seed: 3,
            },
            Workload::Mst {
                nodes: 80,
                edges: 240,
                seed: 4,
            },
        ];
        for w in jobs {
            let m = w.run(2, &recovery).expect("small workloads must finish");
            assert!(m.iterations > 0, "{} reported zero iterations", w.algo());
        }
    }
}
