//! The device pool: N worker threads, each owning one virtual-device
//! slot, draining the shared ready queue (`sched::ReadyQueue`).
//!
//! Each worker loops: pick the next job under the scheduler's rule, emit
//! its `Scheduled`/`Started` lifecycle events, then drive the workload on
//! a fresh simulated device (`Workload::run` builds a `VirtualGpu` with
//! `sms_per_device` SMs via the pipeline's `try_*` entry point). The
//! recovering driver absorbs transient faults itself; what escapes to the
//! pool is a give-up error, classified into requeue (transient, budget
//! remaining), permanent failure, or cancellation.
//!
//! Determinism note: the *pick* is deterministic given queue contents,
//! but with >1 device the interleaving of completions is not — this is a
//! throughput layer, not a replayable simulation. Everything observable
//! (job lifecycles, attribution, fairness accounting) flows through
//! `morph-trace` events, so post-hoc analysis never depends on shared
//! mutable state.

use crate::job::{classify, FailureClass, Job, JobId, JobSpec, JobStatus};
use crate::sched::{AdmitError, ReadyQueue};
use morph_core::{CancelToken, MetricsHub, MetricsRegistry, RecoveryOpts, RecoveryPolicy};
use morph_trace::{JobEventKind, TraceEvent, Tracer};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Pool shape and per-job driver defaults.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Device slots (worker threads). Each runs one job at a time.
    pub devices: usize,
    /// SMs per simulated device.
    pub sms_per_device: usize,
    /// Admission-queue bound; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Recovery policy every job is driven with.
    pub policy: RecoveryPolicy,
    /// Barrier watchdog armed on every job's device.
    pub barrier_watchdog: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 2,
            sms_per_device: 2,
            queue_capacity: 64,
            policy: RecoveryPolicy::default(),
            barrier_watchdog: None,
        }
    }
}

#[derive(Debug)]
struct ServeState {
    queue: ReadyQueue,
    /// Cancel handles of in-flight jobs, keyed by id.
    running: BTreeMap<JobId, CancelToken>,
    statuses: BTreeMap<JobId, JobStatus>,
    /// Accrued device-µs per tenant (the fair-share signal). Failures
    /// accrue too: a tenant burning device time on doomed jobs must not
    /// outrank one whose jobs finish.
    tenant_run_us: BTreeMap<String, u64>,
    next_id: JobId,
    next_seq: u64,
    shutting_down: bool,
}

struct Inner {
    state: Mutex<ServeState>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled on every terminal transition.
    done: Condvar,
    /// Base (untagged) tracer. Job lifecycle events go through this —
    /// they carry their own `job` field. Pipeline events go through
    /// `tracer.for_job(id)` so engine/recovery spans get attributed.
    tracer: Tracer,
    /// Live metrics registry. Every job's pipeline runs with a hub tagged
    /// `tenant`/`algo`, so engine cost-model series and the pool's own
    /// latency histograms land here, partitioned per tenant and algorithm.
    metrics: Arc<MetricsRegistry>,
    epoch: Instant,
    cfg: ServeConfig,
}

impl Inner {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    // One parameter per field of the event it mirrors.
    #[allow(clippy::too_many_arguments)]
    fn emit_job(
        &self,
        job: JobId,
        tenant: &str,
        kind: JobEventKind,
        queue_depth: u64,
        device: u64,
        deadline_us: u64,
        detail: String,
    ) {
        let t_us = self.now_us();
        let tenant = tenant.to_string();
        self.tracer.emit(move || TraceEvent::Job {
            job,
            tenant,
            kind,
            queue_depth,
            device,
            t_us,
            deadline_us,
            detail,
        });
    }
}

/// The serving pool. Dropping it without [`MorphServe::shutdown`] joins
/// the workers after draining queued work.
pub struct MorphServe {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl MorphServe {
    /// Start `cfg.devices` worker threads against an empty queue.
    /// `tracer` receives the merged, line-atomic event stream; pass
    /// `Tracer::disabled()` to serve without observability.
    pub fn start(cfg: ServeConfig, tracer: Tracer) -> Self {
        let devices = cfg.devices.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(ServeState {
                queue: ReadyQueue::new(cfg.queue_capacity),
                running: BTreeMap::new(),
                statuses: BTreeMap::new(),
                tenant_run_us: BTreeMap::new(),
                next_id: 1,
                next_seq: 0,
                shutting_down: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            tracer,
            metrics: Arc::new(MetricsRegistry::new()),
            epoch: Instant::now(),
            cfg,
        });
        let workers = (0..devices)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("morph-serve-dev{}", slot + 1))
                    .spawn(move || worker_loop(&inner, (slot + 1) as u64))
                    .expect("spawning a device worker thread")
            })
            .collect();
        MorphServe { inner, workers }
    }

    /// Submit a job. Returns its id, or the spec back with the admission
    /// error when the queue is saturated (a `Rejected` event is emitted
    /// so rejections are visible in the trace).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, (JobSpec, AdmitError)> {
        let mut st = self.inner.state.lock().unwrap();
        let id = st.next_id;
        let seq = st.next_seq;
        let deadline_us = spec
            .deadline
            .map(|d| (self.inner.now_us() + d.as_micros() as u64).max(1))
            .unwrap_or(0);
        let job = Job {
            id,
            spec,
            seq,
            attempts: 0,
            cancel: CancelToken::new(),
            deadline_us,
        };
        let tenant = job.spec.tenant.clone();
        let detail = job.spec.workload.encode();
        match st.queue.admit(job) {
            Ok(()) => {
                st.next_id += 1;
                st.next_seq += 1;
                st.statuses.insert(id, JobStatus::Queued);
                let depth = st.queue.len() as u64;
                drop(st);
                self.inner
                    .emit_job(id, &tenant, JobEventKind::Submitted, depth, 0, deadline_us, detail);
                self.inner.work.notify_one();
                Ok(id)
            }
            Err(bounced) => {
                let (job, err) = *bounced;
                let depth = st.queue.len() as u64;
                drop(st);
                self.inner.emit_job(
                    id,
                    &tenant,
                    JobEventKind::Rejected,
                    depth,
                    0,
                    deadline_us,
                    err.to_string(),
                );
                Err((job.spec, err))
            }
        }
    }

    /// Cancel a job. Queued: removed immediately (terminal `Cancelled`).
    /// Running: its token is raised and the driver unwinds at the next
    /// host-action boundary, freeing the device slot. Terminal/unknown:
    /// no-op. Returns whether anything was cancelled.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        if let Some(job) = st.queue.remove(id) {
            st.statuses.insert(id, JobStatus::Cancelled);
            let depth = st.queue.len() as u64;
            let tenant = job.spec.tenant.clone();
            drop(st);
            self.inner.emit_job(
                id,
                &tenant,
                JobEventKind::Cancelled,
                depth,
                0,
                job.deadline_us,
                "cancelled while queued".into(),
            );
            self.inner.done.notify_all();
            return true;
        }
        if let Some(tok) = st.running.get(&id) {
            tok.cancel();
            return true;
        }
        false
    }

    /// Current status, if the job id was ever admitted.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.inner.state.lock().unwrap().statuses.get(&id).cloned()
    }

    /// Block until the job reaches a terminal state and return it.
    /// Returns `None` for an id that was never admitted.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.statuses.get(&id) {
                None => return None,
                Some(s) if s.is_terminal() => return Some(s.clone()),
                Some(_) => {
                    let (next, _) = self
                        .inner
                        .done
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap();
                    st = next;
                }
            }
        }
    }

    /// Block until every admitted job is terminal.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let all_done = st.queue.is_empty()
                && st.running.is_empty()
                && st.statuses.values().all(JobStatus::is_terminal);
            if all_done {
                return;
            }
            let (next, _) = self
                .inner
                .done
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap();
            st = next;
        }
    }

    /// Per-tenant accrued device time (µs) — the live fairness signal.
    /// The pool's live metrics registry: engine cost-model series and
    /// per-job latency histograms, labelled by tenant and algorithm.
    /// Snapshot or export it at any time; series accumulate across jobs
    /// for the lifetime of the pool.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.inner.metrics
    }

    pub fn tenant_run_us(&self) -> BTreeMap<String, u64> {
        self.inner.state.lock().unwrap().tenant_run_us.clone()
    }

    /// Drain queued work, stop the workers, and join them. Flushes the
    /// tracer. Idempotent.
    pub fn shutdown(&mut self) {
        self.drain();
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutting_down = true;
        }
        self.inner.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.inner.tracer.flush();
    }
}

impl Drop for MorphServe {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One device slot's service loop.
fn worker_loop(inner: &Arc<Inner>, device: u64) {
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(job) = {
                    let usage = st.tenant_run_us.clone();
                    st.queue.pick(&usage)
                } {
                    break job;
                }
                if st.shutting_down {
                    return;
                }
                let (next, _) = inner
                    .work
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap();
                st = next;
            }
        };
        run_one(inner, device, job);
    }
}

/// Run one picked job to a terminal state or a requeue.
fn run_one(inner: &Arc<Inner>, device: u64, mut job: Job) {
    let id = job.id;
    let tenant = job.spec.tenant.clone();
    job.attempts += 1;
    let attempt = job.attempts;

    // Transition to Running and register the cancel handle while holding
    // the lock, so `cancel` can always find in-flight jobs.
    let depth = {
        let mut st = inner.state.lock().unwrap();
        st.running.insert(id, job.cancel.clone());
        st.statuses.insert(id, JobStatus::Running { device });
        st.queue.len() as u64
    };
    inner.emit_job(
        id,
        &tenant,
        JobEventKind::Scheduled,
        depth,
        device,
        job.deadline_us,
        format!("attempt {attempt}"),
    );
    inner.emit_job(
        id,
        &tenant,
        JobEventKind::Started,
        depth,
        device,
        job.deadline_us,
        job.spec.workload.encode(),
    );

    let hub = MetricsHub::new(Arc::clone(&inner.metrics))
        .with_label("tenant", &tenant)
        .with_label("algo", job.spec.workload.algo());
    let recovery = RecoveryOpts {
        policy: inner.cfg.policy,
        fault_plan: job.spec.fault_plan.clone(),
        barrier_watchdog: inner.cfg.barrier_watchdog,
        tracer: inner.tracer.for_job(id),
        metrics: hub.clone(),
        cancel: job.cancel.clone(),
    };
    let run_started = Instant::now();
    let outcome = job.spec.workload.run(inner.cfg.sms_per_device, &recovery);
    let run_us = run_started.elapsed().as_micros() as u64;
    if let Some(h) = hub.histogram(
        "morph_job_run_us",
        "Per-job device-resident wall time in microseconds",
    ) {
        h.record(run_us);
    }

    let mut st = inner.state.lock().unwrap();
    st.running.remove(&id);
    *st.tenant_run_us.entry(tenant.clone()).or_insert(0) += run_us;

    match outcome {
        Ok(metrics) => {
            st.statuses.insert(id, JobStatus::Finished { metrics });
            let depth = st.queue.len() as u64;
            drop(st);
            inner.emit_job(
                id,
                &tenant,
                JobEventKind::Finished,
                depth,
                device,
                job.deadline_us,
                format!(
                    "{}: {} iterations, {} items, {} retries",
                    job.spec.workload.algo(),
                    metrics.iterations,
                    metrics.work_items,
                    metrics.retries
                ),
            );
        }
        Err(err) => match classify(&err) {
            FailureClass::Cancelled => {
                st.statuses.insert(id, JobStatus::Cancelled);
                let depth = st.queue.len() as u64;
                drop(st);
                inner.emit_job(
                    id,
                    &tenant,
                    JobEventKind::Cancelled,
                    depth,
                    device,
                    job.deadline_us,
                    err.to_string(),
                );
            }
            FailureClass::Retryable if attempt < job.spec.retry.max_attempts => {
                let detail = format!("attempt {attempt} failed: {err}");
                st.statuses.insert(id, JobStatus::Queued);
                st.queue.requeue(job);
                let depth = st.queue.len() as u64;
                drop(st);
                inner.emit_job(
                    id,
                    &tenant,
                    JobEventKind::Requeued,
                    depth,
                    device,
                    0,
                    detail,
                );
                inner.work.notify_one();
                // Not terminal: skip the `done` notification below.
                return;
            }
            class => {
                let permanent = class == FailureClass::Permanent;
                st.statuses.insert(
                    id,
                    JobStatus::Failed {
                        attempts: attempt,
                        error: err.to_string(),
                        permanent,
                    },
                );
                let depth = st.queue.len() as u64;
                drop(st);
                inner.emit_job(
                    id,
                    &tenant,
                    JobEventKind::Failed,
                    depth,
                    device,
                    job.deadline_us,
                    format!(
                        "{} after {attempt} attempt(s): {err}",
                        if permanent { "permanent" } else { "retries exhausted" }
                    ),
                );
            }
        },
    }
    inner.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobMetrics, Priority, Workload};
    use morph_trace::{RingSink, TraceReport};

    fn small_mst(seed: u64) -> Workload {
        Workload::Mst {
            nodes: 60,
            edges: 180,
            seed,
        }
    }

    #[test]
    fn a_single_job_runs_to_finished() {
        let ring = Arc::new(RingSink::new(4096));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                ..ServeConfig::default()
            },
            tracer,
        );
        let id = pool.submit(JobSpec::new("t0", small_mst(1))).unwrap();
        let status = pool.wait(id).unwrap();
        match status {
            JobStatus::Finished {
                metrics: JobMetrics { iterations, .. },
            } => assert!(iterations > 0),
            other => panic!("expected Finished, got {other:?}"),
        }
        pool.shutdown();
        let report = TraceReport::from_events(ring.events().iter());
        let row = &report.jobs[&id];
        assert_eq!(row.outcome, Some(JobEventKind::Finished));
        assert_eq!(row.starts, 1);
        assert_eq!(row.device, Some(1));
        assert!(row.turnaround_us().is_some());
    }

    #[test]
    fn jobs_publish_tenant_tagged_metrics_that_round_trip() {
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 2,
                ..ServeConfig::default()
            },
            Tracer::disabled(),
        );
        let a = pool.submit(JobSpec::new("acme", small_mst(7))).unwrap();
        let b = pool
            .submit(JobSpec::new("zeta", Workload::Dmr { triangles: 300, seed: 8 }))
            .unwrap();
        pool.wait(a);
        pool.wait(b);
        let snap = pool.metrics().snapshot();
        pool.shutdown();

        // One latency sample per job, partitioned by tenant and algorithm.
        let latency: Vec<_> = snap
            .series
            .iter()
            .filter(|s| s.name == "morph_job_run_us")
            .collect();
        assert_eq!(latency.len(), 2, "one series per (tenant, algo) pair");
        for s in &latency {
            assert!(s.labels.iter().any(|(k, _)| k == "tenant"));
            assert!(s.labels.iter().any(|(k, _)| k == "algo"));
            match &s.value {
                morph_metrics::SampleValue::Histogram(h) => assert_eq!(h.count, 1),
                other => panic!("expected latency histogram, got {other:?}"),
            }
        }
        // Engine cost-model series rode the same hub.
        assert!(
            snap.series
                .iter()
                .any(|s| s.name == "morph_gmem_accesses_total"),
            "pipeline launches must publish cost-model counters"
        );

        // Exposition text is valid: every sample covered by TYPE + HELP.
        let text = morph_metrics::expose(&snap);
        let parsed = morph_metrics::parse_exposition(&text).expect("valid exposition");
        assert!(parsed.samples.iter().any(|s| s.name == "morph_job_run_us_count"));
    }

    #[test]
    fn saturated_queue_rejects_and_traces() {
        let ring = Arc::new(RingSink::new(4096));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        // Zero devices is clamped to 1, but a 1-capacity queue with slow
        // jobs saturates immediately.
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                queue_capacity: 1,
                ..ServeConfig::default()
            },
            tracer,
        );
        // Fill the only device and the only queue slot, then overflow.
        let a = pool
            .submit(JobSpec::new("t", Workload::Dmr { triangles: 400, seed: 1 }))
            .unwrap();
        let b = pool.submit(JobSpec::new("t", small_mst(2)));
        let c = pool.submit(JobSpec::new("t", small_mst(3)));
        // At least one of b/c must have been rejected or both admitted
        // (the first job may have been picked already, freeing a slot);
        // saturation is timing-dependent, so just drain and assert the
        // invariant: every *admitted* job reached a terminal state.
        pool.drain();
        assert!(pool.wait(a).unwrap().is_terminal());
        for r in [b, c].into_iter().flatten() {
            assert!(pool.wait(r).unwrap().is_terminal());
        }
        pool.shutdown();
    }

    #[test]
    fn cancelling_a_queued_job_is_immediate() {
        let ring = Arc::new(RingSink::new(4096));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                ..ServeConfig::default()
            },
            tracer,
        );
        // Occupy the device with a longer job, queue a victim behind it.
        let long = pool
            .submit(JobSpec::new("t", Workload::Dmr { triangles: 600, seed: 5 }))
            .unwrap();
        let victim = pool
            .submit(JobSpec::new("t", small_mst(6)).with_priority(Priority::Low))
            .unwrap();
        // The victim may already be running if the device freed quickly;
        // cancel handles both cases.
        assert!(pool.cancel(victim));
        let status = pool.wait(victim).unwrap();
        assert!(
            matches!(status, JobStatus::Cancelled),
            "victim should be cancelled, got {status:?}"
        );
        assert!(matches!(
            pool.wait(long).unwrap(),
            JobStatus::Finished { .. }
        ));
        pool.shutdown();
    }

    #[test]
    fn fair_share_interleaves_two_tenants() {
        let ring = Arc::new(RingSink::new(1 << 14));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
            tracer,
        );
        // 4 jobs for tenant A submitted first, then 4 for tenant B. With
        // strict FIFO, all A-jobs would run before any B-job; fair share
        // must alternate once A has accrued device time.
        let mut ids = Vec::new();
        for s in 0..4 {
            ids.push(pool.submit(JobSpec::new("a", small_mst(s))).unwrap());
        }
        for s in 4..8 {
            ids.push(pool.submit(JobSpec::new("b", small_mst(s))).unwrap());
        }
        pool.drain();
        pool.shutdown();
        let report = TraceReport::from_events(ring.events().iter());
        // All 8 finished.
        for id in &ids {
            assert_eq!(report.jobs[id].outcome, Some(JobEventKind::Finished));
        }
        // The first B-job must not have waited for all four A-jobs: find
        // start order and check a B-job started before the last A-job.
        let mut starts: Vec<(u64, String)> = report
            .jobs
            .values()
            .map(|r| (r.started_us.unwrap(), r.tenant.clone()))
            .collect();
        starts.sort();
        let order: Vec<&str> = starts.iter().map(|(_, t)| t.as_str()).collect();
        let first_b = order.iter().position(|t| *t == "b").unwrap();
        assert!(
            first_b < order.len() - 1 && order[first_b + 1..].contains(&"a"),
            "fair share should interleave tenants, got {order:?}"
        );
    }
}
