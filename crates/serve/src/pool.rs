//! The device pool: N worker threads, each owning one virtual-device
//! slot, draining the shared ready queue (`sched::ReadyQueue`).
//!
//! Each worker loops: pick the next job under the scheduler's rule, emit
//! its `Scheduled`/`Started` lifecycle events, then drive the workload on
//! a fresh simulated device (`Workload::run` builds a `VirtualGpu` with
//! `sms_per_device` SMs via the pipeline's `try_*` entry point). The
//! recovering driver absorbs transient faults itself; what escapes to the
//! pool is a give-up error, classified into requeue (transient, budget
//! remaining), permanent failure, or cancellation.
//!
//! # Failure domains and resilience
//!
//! Three layers sit on top of the per-job retry machinery:
//!
//! * **Eviction** — a [`LaunchError::DeviceLost`](morph_gpu_sim::LaunchError)
//!   surfacing from the driver, or the hung-job watchdog firing, pulls the
//!   job off its slot: a `TraceEvent::Eviction` + `Job`/`Requeued` pair is
//!   emitted and the job re-enters the queue with `avoid_device` set so
//!   the rerun lands on a different slot whenever one exists. Evictions
//!   are budgeted separately from the job's retry policy
//!   ([`ServeConfig::max_evictions`]) — losing a device is the slot's
//!   fault, not the job's.
//! * **Slot health** — each device slot carries a consecutive-eviction
//!   circuit breaker: [`ServeConfig::quarantine_threshold`] failures in a
//!   row quarantine the slot for [`ServeConfig::quarantine_cooldown`],
//!   after which it re-admits itself half-open (probation) and one clean
//!   probe job restores it. Transitions ride `TraceEvent::Health` and the
//!   `morph_device_health` gauge.
//! * **Checkpoint/resume** — with [`ServeConfig::checkpoint_every`] > 0
//!   the pool owns a shared [`CheckpointStore`] and hands every job a
//!   [`CheckpointCtl`]; pipelines snapshot their minimal host-visible
//!   resume state at iteration boundaries, so an evicted job restarts
//!   from its last checkpoint (a `Job`/`Resumed` event) instead of from
//!   scratch. With the default (0) no store exists and no snapshot is
//!   ever allocated.
//!
//! Determinism note: the *pick* is deterministic given queue contents,
//! but with >1 device the interleaving of completions is not — this is a
//! throughput layer, not a replayable simulation. Everything observable
//! (job lifecycles, attribution, fairness accounting) flows through
//! `morph-trace` events, so post-hoc analysis never depends on shared
//! mutable state.

use crate::job::{classify, FailureClass, Job, JobId, JobSpec, JobStatus};
use crate::journal::{self, Journal, JournalOutcome, JournalRecord, RecoveryStats};
use crate::sched::{backoff_delay_us, AdmitError, ReadyQueue};
use crate::slo::{SloConfig, SloMonitor};
use morph_core::{
    AutoTuner, CancelToken, CheckpointCtl, CheckpointStore, DriveError, MetricsHub,
    MetricsRegistry, RecoveryOpts, RecoveryPolicy, TuneConfig,
};
use morph_gpu_sim::{FaultPlan, LensHub};
use morph_trace::{
    FlightConfig, FlightRecorder, JobEventKind, PhaseProfiler, ProfilerScope, RestoreOutcome,
    TraceEvent, TraceSink, Tracer,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Pool shape and per-job driver defaults.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Device slots (worker threads). Each runs one job at a time.
    pub devices: usize,
    /// SMs per simulated device.
    pub sms_per_device: usize,
    /// Admission-queue bound; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Recovery policy every job is driven with.
    pub policy: RecoveryPolicy,
    /// Barrier watchdog armed on every job's device.
    pub barrier_watchdog: Option<Duration>,
    /// Checkpoint cadence in completed host-loop iterations; 0 (the
    /// default) disables checkpointing entirely — no store is built and
    /// pipelines never encode a snapshot.
    pub checkpoint_every: u64,
    /// Hung-job watchdog: a running job whose progress heartbeat stands
    /// still this long is cooperatively cancelled and evicted. `None`
    /// disables the watchdog.
    pub hang_budget: Option<Duration>,
    /// Consecutive evictions on one slot before it is quarantined.
    pub quarantine_threshold: u32,
    /// How long a quarantined slot sits out before a half-open probe.
    pub quarantine_cooldown: Duration,
    /// Evictions one job may suffer before it fails terminally (a
    /// separate budget from [`crate::RetryPolicy::max_attempts`]).
    pub max_evictions: u32,
    /// Bind address for the live introspection HTTP plane (`/metrics`,
    /// `/healthz`, `/jobs`); `None` disables it. `127.0.0.1:0` binds an
    /// ephemeral port, reported by [`MorphServe::http_addr`].
    pub http_addr: Option<String>,
    /// Flight-recorder shape. The recorder itself is always armed — its
    /// bounded per-slot rings ride the sink tee next to whatever tracer
    /// the caller supplied — and only writes a file when
    /// `flight.dump_path` is set and a trigger fires.
    pub flight: FlightConfig,
    /// Shared phase profiler: when set, every job runs under a
    /// [`ProfilerScope`] so modelled device cycles accumulate per
    /// `algo;iteration-class;phase` (see `morph_trace::profile`).
    pub profiler: Option<Arc<PhaseProfiler>>,
    /// Turnaround SLO burn-rate monitor config; `None` disables it.
    pub slo: Option<SloConfig>,
    /// Durable-state directory. When set, the pool is crash-consistent:
    /// a write-ahead job journal (`journal.wal`) records every lifecycle
    /// transition, the checkpoint store becomes the on-disk verified
    /// store (`job-N.ck` artifacts; `checkpoint_every` is clamped up to
    /// at least 1), and `start` reconciles whatever a previous
    /// incarnation left in the directory — terminal jobs are accounted
    /// without re-running, in-flight jobs are re-queued to resume from
    /// their last good snapshot or restart from zero. `None` (default)
    /// keeps everything in memory, exactly as before.
    pub state_dir: Option<PathBuf>,
    /// Durability fault injection (torn/short journal writes, fsync
    /// denial, snapshot bit-flips) shared by the journal and the
    /// checkpoint store. Only meaningful with `state_dir` set.
    pub durability_faults: Option<Arc<FaultPlan>>,
    /// Closed-loop autotuning (`morph-tune`): when true, every job runs
    /// with an enabled [`AutoTuner`] (default thresholds) so the
    /// recovering driver follows measured occupancy/abort/coalescing
    /// feedback instead of the paper's fixed §7.4 schedules. Default
    /// false — byte-identical to the untuned driver.
    pub autotune: bool,
    /// morph-lens attribution: when true, every job runs with one shared
    /// enabled [`LensHub`], so pipelines register their device structures
    /// and the engine buckets metered traffic per phase × structure. The
    /// cumulative table is served at `/lens` and the per-launch deltas
    /// land on the `morph_lens_*` metric families. Default false — no
    /// registry, no attribution, no overhead.
    pub lens: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 2,
            sms_per_device: 2,
            queue_capacity: 64,
            policy: RecoveryPolicy::default(),
            barrier_watchdog: None,
            checkpoint_every: 0,
            hang_budget: None,
            quarantine_threshold: 3,
            quarantine_cooldown: Duration::from_millis(100),
            max_evictions: 4,
            http_addr: None,
            flight: FlightConfig::default(),
            profiler: None,
            slo: None,
            state_dir: None,
            durability_faults: None,
            autotune: false,
            lens: false,
        }
    }
}

/// One in-flight job as the pool and the watchdog see it.
#[derive(Debug)]
struct RunningEntry {
    cancel: CancelToken,
    /// Progress heartbeat shared with the driver (bumped at every
    /// host-action boundary and completed launch).
    heartbeat: Arc<AtomicU64>,
    /// Last heartbeat value the watchdog observed, and when it changed.
    last_beat: u64,
    beat_seen: Instant,
}

/// Circuit-breaker state of one device slot.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    Healthy,
    /// Half-open after a quarantine: one probe job decides.
    Probation,
    Quarantined {
        until: Instant,
    },
}

impl SlotState {
    fn as_str(self) -> &'static str {
        match self {
            SlotState::Healthy => "healthy",
            SlotState::Probation => "probation",
            SlotState::Quarantined { .. } => "quarantined",
        }
    }
}

#[derive(Debug)]
struct SlotHealth {
    state: SlotState,
    consecutive_failures: u64,
}

/// Point-in-time circuit-breaker state of one device slot — the single
/// health source both `/healthz` and the end-of-run summary derive from
/// (see [`MorphServe::slot_health`] and
/// [`crate::ServeSummary::with_slot_health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotHealthSnapshot {
    /// 1-based device slot.
    pub device: u64,
    /// `"healthy"`, `"probation"` or `"quarantined"`.
    pub state: &'static str,
    pub consecutive_failures: u64,
}

/// Live bookkeeping for the `/jobs` endpoint: one row per admitted job,
/// updated at every lifecycle transition under the state lock.
#[derive(Debug, Clone)]
pub(crate) struct JobMeta {
    pub(crate) tenant: String,
    /// The workload's replay encoding (`<algo> <args…>`).
    pub(crate) workload: String,
    pub(crate) priority: &'static str,
    pub(crate) deadline_us: u64,
    pub(crate) submitted_us: u64,
    /// First `Started` transition (wait time ends here).
    pub(crate) started_us: Option<u64>,
    /// Terminal transition.
    pub(crate) ended_us: Option<u64>,
    /// Device of the most recent start; cleared on requeue-by-eviction.
    pub(crate) device: Option<u64>,
    pub(crate) attempts: u32,
    pub(crate) evictions: u32,
}

#[derive(Debug)]
pub(crate) struct ServeState {
    queue: ReadyQueue,
    /// In-flight jobs, keyed by id.
    running: BTreeMap<JobId, RunningEntry>,
    pub(crate) statuses: BTreeMap<JobId, JobStatus>,
    /// Live per-job rows served by `/jobs`.
    pub(crate) meta: BTreeMap<JobId, JobMeta>,
    /// Accrued device-µs per tenant (the fair-share signal). Failures
    /// accrue too: a tenant burning device time on doomed jobs must not
    /// outrank one whose jobs finish.
    tenant_run_us: BTreeMap<String, u64>,
    /// Jobs whose cancellation was requested by the caller while running —
    /// distinguishes a user cancel from a watchdog eviction, which both
    /// surface as `DriveError::Cancelled`.
    cancel_requested: BTreeSet<JobId>,
    /// Jobs the watchdog is evicting, with the reason.
    evicting: BTreeMap<JobId, &'static str>,
    /// Per-slot circuit breaker, indexed by device - 1.
    health: Vec<SlotHealth>,
    next_id: JobId,
    next_seq: u64,
    pub(crate) shutting_down: bool,
}

pub(crate) struct Inner {
    pub(crate) state: Mutex<ServeState>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled on every terminal transition.
    done: Condvar,
    /// Base (untagged) tracer. Job lifecycle events go through this —
    /// they carry their own `job` field. Pipeline events go through
    /// `tracer.for_job(id)` so engine/recovery spans get attributed.
    tracer: Tracer,
    /// Live metrics registry. Every job's pipeline runs with a hub tagged
    /// `tenant`/`algo`, so engine cost-model series and the pool's own
    /// latency histograms land here, partitioned per tenant and algorithm.
    pub(crate) metrics: Arc<MetricsRegistry>,
    /// Shared checkpoint store; `None` when `checkpoint_every == 0` and
    /// no `state_dir` is configured.
    checkpoints: Option<Arc<CheckpointStore>>,
    /// Write-ahead job journal; `Some` iff [`ServeConfig::state_dir`].
    journal: Option<Arc<Journal>>,
    /// What reconciliation found on startup (all-zero without a
    /// `state_dir` or on a first run). Surfaced by `/healthz` and folded
    /// into the end-of-run summary via `Restore` trace events.
    pub(crate) recovery: RecoveryStats,
    /// Always-on flight recorder, teed into the sink chain.
    pub(crate) flight: Arc<FlightRecorder>,
    /// SLO burn-rate monitor; `None` when [`ServeConfig::slo`] is unset.
    pub(crate) slo: Option<SloMonitor>,
    /// Shared morph-lens hub (enabled iff [`ServeConfig::lens`]); every
    /// job's pipeline registers its structures here, `/lens` snapshots it.
    pub(crate) lens: LensHub,
    epoch: Instant,
    pub(crate) cfg: ServeConfig,
}

impl Inner {
    pub(crate) fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Mirror the admission-queue depth on the `morph_queue_depth` gauge;
    /// sampled at every transition that changes the queue (admit,
    /// dispatch, cancel, requeue, shed), so a scrape between terminal
    /// events sees the live backlog.
    fn note_queue_depth(&self, depth: u64) {
        self.metrics
            .gauge(
                "morph_queue_depth",
                "Jobs waiting in the admission queue",
                &[],
            )
            .set(depth as i64);
    }

    /// Live breaker state per slot, 1-based device order.
    pub(crate) fn slot_health(&self) -> Vec<SlotHealthSnapshot> {
        let st = self.state.lock().unwrap();
        st.health
            .iter()
            .enumerate()
            .map(|(slot, h)| SlotHealthSnapshot {
                device: slot as u64 + 1,
                state: h.state.as_str(),
                consecutive_failures: h.consecutive_failures,
            })
            .collect()
    }

    /// Stamp a job's terminal transition in the live meta table. Returns
    /// the SLO sample `(tenant, turnaround_us, ok)` when the outcome
    /// counts toward the objective (`ok: None` = user cancel, no sample).
    fn note_terminal(
        &self,
        st: &mut ServeState,
        id: JobId,
        ok: Option<bool>,
    ) -> Option<(String, u64, bool)> {
        let now = self.now_us();
        let meta = st.meta.get_mut(&id)?;
        meta.ended_us = Some(now);
        let turnaround = now.saturating_sub(meta.submitted_us);
        ok.map(|ok| (meta.tenant.clone(), turnaround, ok))
    }

    /// Feed one terminal sample into the SLO monitor: mirror the fast
    /// burn on the `morph_slo_burn_rate` gauge and emit an Alert event on
    /// the rising edge. Call with the state lock released.
    fn observe_slo(&self, sample: Option<(String, u64, bool)>) {
        let (Some(monitor), Some((tenant, turnaround_us, ok))) = (&self.slo, sample) else {
            return;
        };
        let obs = monitor.observe(&tenant, turnaround_us, ok, self.now_us());
        self.metrics
            .gauge(
                "morph_slo_burn_rate",
                "Fast-window SLO burn rate per tenant, in milli-multiples of the error-budget rate",
                &[("tenant", &tenant)],
            )
            .set((obs.fast_burn * 1000.0) as i64);
        if let Some(a) = obs.alert {
            self.tracer.emit(move || TraceEvent::Alert {
                monitor: "slo_burn_rate".into(),
                tenant: a.tenant,
                severity: "page".into(),
                value: a.value,
                threshold: a.threshold,
                t_us: a.t_us,
                detail: a.detail,
            });
        }
    }

    // One parameter per field of the event it mirrors.
    #[allow(clippy::too_many_arguments)]
    fn emit_job(
        &self,
        job: JobId,
        tenant: &str,
        kind: JobEventKind,
        queue_depth: u64,
        device: u64,
        deadline_us: u64,
        detail: String,
    ) {
        let t_us = self.now_us();
        let tenant = tenant.to_string();
        self.tracer.emit(move || TraceEvent::Job {
            job,
            tenant,
            kind,
            queue_depth,
            device,
            t_us,
            deadline_us,
            detail,
        });
    }

    /// Emit a slot-health transition and mirror it on the
    /// `morph_device_health` gauge (2 healthy, 1 probation, 0 quarantined).
    fn emit_health(&self, device: u64, state: &'static str, failures: u64) {
        let t_us = self.now_us();
        self.tracer.emit(move || TraceEvent::Health {
            device,
            state: state.to_string(),
            failures,
            t_us,
        });
        self.device_health_gauge(device).set(match state {
            "healthy" => 2,
            "probation" => 1,
            _ => 0,
        });
    }

    fn device_health_gauge(&self, device: u64) -> Arc<morph_metrics::Gauge> {
        self.metrics.gauge(
            "morph_device_health",
            "Device-slot health: 2 healthy, 1 probation, 0 quarantined",
            &[("device", &device.to_string())],
        )
    }

    /// Append one record to the write-ahead journal (no-op without a
    /// `state_dir`). An I/O error degrades to a one-shot warn `Alert` on
    /// the trace stream — the serving loop itself never fails on a bad
    /// journal disk, it just stops being crash-consistent.
    fn journal(&self, rec: JournalRecord) {
        let Some(j) = &self.journal else { return };
        j.append(&rec);
        if let Some(err) = j.take_error() {
            let t_us = self.now_us();
            self.tracer.emit(move || TraceEvent::Alert {
                monitor: "journal".into(),
                tenant: String::new(),
                severity: "warn".into(),
                value: 1.0,
                threshold: 0.0,
                t_us,
                detail: format!("journal append failed: {err}"),
            });
        }
    }

    /// Emit one reconciliation decision (schema v4 `restore` event).
    fn emit_restore(
        &self,
        job: JobId,
        outcome: RestoreOutcome,
        version: u64,
        iteration: u64,
        detail: String,
    ) {
        let t_us = self.now_us();
        self.tracer.emit(move || TraceEvent::Restore {
            job,
            outcome,
            version,
            iteration,
            t_us,
            detail,
        });
    }
}

/// Tees the pool's sink chain into the journal: every `Checkpoint`
/// event a pipeline emits becomes a `Checkpointed` journal record, so
/// the journal knows — across a crash — which jobs have a snapshot
/// worth resuming from.
struct JournalCheckpointTee {
    journal: Arc<Journal>,
}

impl TraceSink for JournalCheckpointTee {
    fn record(&self, event: TraceEvent) {
        self.record_tagged(None, event);
    }

    fn record_tagged(&self, _job: Option<u64>, event: TraceEvent) {
        if let TraceEvent::Checkpoint {
            job,
            version,
            iteration,
            ..
        } = event
        {
            self.journal.append(&JournalRecord::Checkpointed {
                job,
                version,
                iteration,
            });
        }
    }
}

/// The serving pool. Dropping it without [`MorphServe::shutdown`] joins
/// the workers after draining queued work.
pub struct MorphServe {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    http_addr: Option<std::net::SocketAddr>,
}

impl MorphServe {
    /// Start `cfg.devices` worker threads against an empty queue.
    /// `tracer` receives the merged, line-atomic event stream; pass
    /// `Tracer::disabled()` to serve without observability. The pool
    /// always tees its flight recorder next to the given tracer, so
    /// post-mortem context exists even for untraced runs.
    ///
    /// # Panics
    ///
    /// When [`ServeConfig::http_addr`] is set and the address cannot be
    /// bound, or when [`ServeConfig::state_dir`] is set and the durable
    /// state cannot be opened at all (an unreadable *record* inside it
    /// is recovered from, not panicked over).
    pub fn start(cfg: ServeConfig, tracer: Tracer) -> Self {
        let devices = cfg.devices.max(1);
        // Open the durable plane first: the verified checkpoint store and
        // the write-ahead journal, replaying whatever the previous
        // incarnation left behind.
        let mut journal_handle: Option<Arc<Journal>> = None;
        let mut journal_scan = journal::JournalScan::default();
        let mut store_discarded = 0u64;
        let mut store_fell_back = 0u64;
        let checkpoints = if let Some(dir) = &cfg.state_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("creating state dir {}: {e}", dir.display()));
            let store = CheckpointStore::durable(dir.clone(), cfg.durability_faults.clone())
                .unwrap_or_else(|e| panic!("opening checkpoint store in {}: {e}", dir.display()));
            if let Some(r) = store.store_recovery() {
                store_discarded = r.discarded;
                store_fell_back = r.fell_back;
            }
            let (j, scan) = Journal::open(dir.join("journal.wal"), cfg.durability_faults.clone())
                .unwrap_or_else(|e| panic!("opening journal in {}: {e}", dir.display()));
            journal_handle = Some(Arc::new(j));
            journal_scan = scan;
            Some(Arc::new(store))
        } else {
            (cfg.checkpoint_every > 0).then(|| Arc::new(CheckpointStore::in_memory()))
        };

        // Reconcile the journal against the store: per-job ledgers decide
        // who is already terminal (accounted, never re-run), who resumes
        // from a snapshot, and who restarts from zero.
        let ledgers = journal::fold(&journal_scan.records);
        let mut recovery = RecoveryStats {
            journaled_jobs: ledgers.len() as u64,
            discarded: store_discarded,
            truncated_bytes: journal_scan.truncated_bytes,
            ..RecoveryStats::default()
        };
        let mut recovered_jobs: Vec<Job> = Vec::new();
        // (job, outcome, version, iteration, detail) — emitted as Restore
        // events once the tracer handle exists below.
        let mut restores: Vec<(JobId, RestoreOutcome, u64, u64, String)> = Vec::new();
        let mut statuses = BTreeMap::new();
        let mut meta = BTreeMap::new();
        let mut max_id = 0;
        for (&id, ledger) in &ledgers {
            max_id = max_id.max(id);
            if let Some(outcome) = ledger.terminal {
                // Exactly-once accounting: a journaled terminal is final.
                // Its artifacts are no longer needed.
                if let Some(store) = &checkpoints {
                    store.discard(id);
                }
                let (kind, detail) = match outcome {
                    JournalOutcome::Finished => {
                        recovery.finished += 1;
                        (RestoreOutcome::Finished, "already finished; not re-run")
                    }
                    JournalOutcome::Failed { .. } => {
                        recovery.failed += 1;
                        (RestoreOutcome::Failed, "already failed; not re-run")
                    }
                    JournalOutcome::Cancelled => {
                        recovery.cancelled += 1;
                        (RestoreOutcome::Cancelled, "already cancelled; not re-run")
                    }
                };
                restores.push((id, kind, 0, 0, detail.to_string()));
                continue;
            }
            let Some(spec) = ledger.spec() else {
                // The admission record survived but its workload encoding
                // does not parse (bit rot past the CRC's reach is ruled
                // out, so this is a future-encoding artifact): report it,
                // don't guess.
                recovery.discarded += 1;
                restores.push((
                    id,
                    RestoreOutcome::Discarded,
                    0,
                    0,
                    format!("unparseable workload {:?}", ledger.workload),
                ));
                continue;
            };
            let snapshot = checkpoints.as_ref().and_then(|s| s.load(id));
            let (kind, version, iteration, detail) = match &snapshot {
                Some(ck) => {
                    recovery.recovered += 1;
                    (
                        RestoreOutcome::Resumed,
                        ck.version,
                        ck.iteration,
                        format!(
                            "resuming from v{} after iteration {} ({} prior start(s))",
                            ck.version, ck.iteration, ledger.starts
                        ),
                    )
                }
                None => {
                    recovery.replayed += 1;
                    (
                        RestoreOutcome::Restarted,
                        0,
                        0,
                        format!("no usable snapshot; restarting ({} prior start(s))", ledger.starts),
                    )
                }
            };
            restores.push((id, kind, version, iteration, detail));
            // Deadlines were journaled relative to submission; the old
            // epoch died with the old process, so the clock restarts here
            // — a documented extension, never a tightening.
            let deadline_us = if ledger.deadline_ms > 0 {
                (ledger.deadline_ms * 1_000).max(1)
            } else {
                0
            };
            // The retry budget the old incarnations burned carries over,
            // but the in-flight attempt was cut short through no fault of
            // the job's — it always gets at least one more start.
            let attempts = (ledger.starts as u32).min(ledger.max_attempts.saturating_sub(1));
            statuses.insert(id, JobStatus::Queued);
            meta.insert(
                id,
                JobMeta {
                    tenant: spec.tenant.clone(),
                    workload: ledger.workload.clone(),
                    priority: spec.priority.as_str(),
                    deadline_us,
                    submitted_us: 0,
                    started_us: None,
                    ended_us: None,
                    device: None,
                    attempts,
                    evictions: 0,
                },
            );
            recovered_jobs.push(Job {
                id,
                spec,
                seq: id,
                attempts,
                cancel: CancelToken::new(),
                deadline_us,
                evictions: 0,
                avoid_device: None,
                not_before_us: 0,
            });
        }

        let mut queue = ReadyQueue::new(cfg.queue_capacity);
        let recovered_meta: Vec<(JobId, String, u64)> = recovered_jobs
            .iter()
            .map(|j| (j.id, j.spec.tenant.clone(), j.deadline_us))
            .collect();
        for job in recovered_jobs {
            // Requeue, not admit: recovered jobs were admitted in a past
            // life and must not bounce off the bound now.
            queue.requeue(job);
        }

        let flight = Arc::new(FlightRecorder::new(cfg.flight.clone()));
        let mut tracer = tracer.tee_with(Arc::clone(&flight) as Arc<dyn TraceSink>);
        if let Some(j) = &journal_handle {
            tracer = tracer.tee_with(Arc::new(JournalCheckpointTee {
                journal: Arc::clone(j),
            }) as Arc<dyn TraceSink>);
        }
        let slo = cfg.slo.clone().map(SloMonitor::new);
        let inner = Arc::new(Inner {
            state: Mutex::new(ServeState {
                queue,
                running: BTreeMap::new(),
                statuses,
                meta,
                tenant_run_us: BTreeMap::new(),
                cancel_requested: BTreeSet::new(),
                evicting: BTreeMap::new(),
                health: (0..devices)
                    .map(|_| SlotHealth {
                        state: SlotState::Healthy,
                        consecutive_failures: 0,
                    })
                    .collect(),
                next_id: max_id + 1,
                next_seq: max_id + 1,
                shutting_down: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            tracer,
            metrics: Arc::new(MetricsRegistry::new()),
            checkpoints,
            journal: journal_handle,
            recovery,
            flight,
            slo,
            lens: if cfg.lens {
                LensHub::enabled()
            } else {
                LensHub::disabled()
            },
            epoch: Instant::now(),
            cfg,
        });
        // Narrate the reconciliation into the trace stream before any
        // worker can start a recovered job: stream-level records first
        // (journal-tail truncation, discarded store artifacts), then the
        // per-job decisions, then a fresh Submitted for each re-queued
        // job so its lifecycle row is complete in this incarnation.
        if recovery.truncated_bytes > 0 {
            inner.emit_restore(
                0,
                RestoreOutcome::Truncated,
                0,
                0,
                format!("journal tail truncated ({} bytes)", recovery.truncated_bytes),
            );
        }
        if store_discarded > 0 || store_fell_back > 0 {
            inner.emit_restore(
                0,
                RestoreOutcome::Discarded,
                0,
                0,
                format!(
                    "checkpoint store: {store_discarded} artifact(s) discarded, {store_fell_back} fell back to .prev"
                ),
            );
        }
        for (id, outcome, version, iteration, detail) in restores {
            inner.emit_restore(id, outcome, version, iteration, detail);
        }
        let depth = inner.state.lock().unwrap().queue.len() as u64;
        for (id, tenant, deadline_us) in recovered_meta {
            inner.emit_job(
                id,
                &tenant,
                JobEventKind::Submitted,
                depth,
                0,
                deadline_us,
                "recovered from journal".into(),
            );
        }
        // Every slot starts healthy; publishing the gauges up front makes
        // the series visible even on runs with no health transitions.
        for device in 1..=devices as u64 {
            inner.device_health_gauge(device).set(2);
        }
        inner.note_queue_depth(depth);
        let mut workers: Vec<std::thread::JoinHandle<()>> = (0..devices)
            .map(|slot| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("morph-serve-dev{}", slot + 1))
                    .spawn(move || worker_loop(&inner, (slot + 1) as u64))
                    .expect("spawning a device worker thread")
            })
            .collect();
        if let Some(budget) = inner.cfg.hang_budget {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("morph-serve-watchdog".into())
                    .spawn(move || watchdog_loop(&inner, budget))
                    .expect("spawning the hang watchdog thread"),
            );
        }
        // Bind the introspection listener synchronously so callers (and
        // `127.0.0.1:0` tests) know the port before the first request.
        let mut http_addr = None;
        if let Some(addr) = inner.cfg.http_addr.clone() {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| panic!("binding introspection listener on {addr}: {e}"));
            http_addr = Some(listener.local_addr().expect("bound listener has an address"));
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("morph-serve-http".into())
                    .spawn(move || crate::http::serve_loop(&inner, listener))
                    .expect("spawning the introspection HTTP thread"),
            );
        }
        MorphServe {
            inner,
            workers,
            http_addr,
        }
    }

    /// Submit a job. Returns its id, or the spec back with the admission
    /// error when the queue is saturated (a `Rejected` event is emitted
    /// so rejections are visible in the trace).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, (JobSpec, AdmitError)> {
        let mut st = self.inner.state.lock().unwrap();
        let id = st.next_id;
        let seq = st.next_seq;
        let deadline_us = spec
            .deadline
            .map(|d| (self.inner.now_us() + d.as_micros() as u64).max(1))
            .unwrap_or(0);
        let job = Job {
            id,
            spec,
            seq,
            attempts: 0,
            cancel: CancelToken::new(),
            deadline_us,
            evictions: 0,
            avoid_device: None,
            not_before_us: 0,
        };
        let tenant = job.spec.tenant.clone();
        let detail = job.spec.workload.encode();
        let priority = job.spec.priority;
        let deadline_ms = job.spec.deadline.map(|d| d.as_millis() as u64).unwrap_or(0);
        let max_attempts = job.spec.retry.max_attempts;
        match st.queue.admit(job) {
            Ok(()) => {
                // Write-ahead: the admission is journaled before any of
                // its in-memory effects, so a crash can forget a job the
                // caller saw rejected but never one it saw admitted.
                self.inner.journal(JournalRecord::Admitted {
                    job: id,
                    tenant: tenant.clone(),
                    priority,
                    deadline_ms,
                    max_attempts,
                    workload: detail.clone(),
                });
                st.next_id += 1;
                st.next_seq += 1;
                st.statuses.insert(id, JobStatus::Queued);
                st.meta.insert(
                    id,
                    JobMeta {
                        tenant: tenant.clone(),
                        workload: detail.clone(),
                        priority: priority.as_str(),
                        deadline_us,
                        submitted_us: self.inner.now_us(),
                        started_us: None,
                        ended_us: None,
                        device: None,
                        attempts: 0,
                        evictions: 0,
                    },
                );
                let depth = st.queue.len() as u64;
                drop(st);
                self.inner.note_queue_depth(depth);
                self.inner
                    .emit_job(id, &tenant, JobEventKind::Submitted, depth, 0, deadline_us, detail);
                self.inner.work.notify_one();
                Ok(id)
            }
            Err(bounced) => {
                let (job, err) = *bounced;
                let depth = st.queue.len() as u64;
                drop(st);
                self.inner.emit_job(
                    id,
                    &tenant,
                    JobEventKind::Rejected,
                    depth,
                    0,
                    deadline_us,
                    err.to_string(),
                );
                Err((job.spec, err))
            }
        }
    }

    /// Cancel a job. Queued: removed immediately (terminal `Cancelled`).
    /// Running: its token is raised and the driver unwinds at the next
    /// host-action boundary, freeing the device slot. Terminal/unknown:
    /// no-op. Returns whether anything was cancelled.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().unwrap();
        if let Some(job) = st.queue.remove(id) {
            self.inner.journal(JournalRecord::Cancelled { job: id });
            st.statuses.insert(id, JobStatus::Cancelled);
            // A user cancel is no SLO sample, but the row still closes.
            self.inner.note_terminal(&mut st, id, None);
            let depth = st.queue.len() as u64;
            let tenant = job.spec.tenant.clone();
            drop(st);
            self.inner.note_queue_depth(depth);
            if let Some(store) = &self.inner.checkpoints {
                store.discard(id);
            }
            self.inner.emit_job(
                id,
                &tenant,
                JobEventKind::Cancelled,
                depth,
                0,
                job.deadline_us,
                "cancelled while queued".into(),
            );
            self.inner.done.notify_all();
            return true;
        }
        if let Some(tok) = st.running.get(&id).map(|e| e.cancel.clone()) {
            // Record that *the caller* asked, so the completion path can
            // tell a user cancel apart from a watchdog eviction.
            st.cancel_requested.insert(id);
            drop(st);
            tok.cancel();
            return true;
        }
        false
    }

    /// Current status, if the job id was ever admitted.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.inner.state.lock().unwrap().statuses.get(&id).cloned()
    }

    /// Block until the job reaches a terminal state and return it.
    /// Returns `None` for an id that was never admitted.
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            match st.statuses.get(&id) {
                None => return None,
                Some(s) if s.is_terminal() => return Some(s.clone()),
                Some(_) => {
                    let (next, _) = self
                        .inner
                        .done
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap();
                    st = next;
                }
            }
        }
    }

    /// Block until every admitted job is terminal.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            let all_done = st.queue.is_empty()
                && st.running.is_empty()
                && st.statuses.values().all(JobStatus::is_terminal);
            if all_done {
                return;
            }
            let (next, _) = self
                .inner
                .done
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap();
            st = next;
        }
    }

    /// Per-tenant accrued device time (µs) — the live fairness signal.
    /// The pool's live metrics registry: engine cost-model series and
    /// per-job latency histograms, labelled by tenant and algorithm.
    /// Snapshot or export it at any time; series accumulate across jobs
    /// for the lifetime of the pool.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.inner.metrics
    }

    /// The shared checkpoint store, when checkpointing is enabled
    /// ([`ServeConfig::checkpoint_every`] > 0).
    pub fn checkpoints(&self) -> Option<&Arc<CheckpointStore>> {
        self.inner.checkpoints.as_ref()
    }

    /// The shared morph-lens attribution hub — enabled iff the pool was
    /// started with [`ServeConfig::lens`]. Snapshot it at any time for
    /// the same cumulative phase × structure table `/lens` serves.
    pub fn lens(&self) -> &LensHub {
        &self.inner.lens
    }

    /// The always-on flight recorder teed into the pool's sink chain.
    /// Dump it manually ([`FlightRecorder::dump`]) for triggers the
    /// recorder cannot see itself — e.g. an integrity violation found at
    /// summary time, or a panic handler.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.inner.flight
    }

    /// Bound address of the introspection HTTP plane, when enabled
    /// ([`ServeConfig::http_addr`]); with port 0 this carries the actual
    /// ephemeral port.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http_addr
    }

    /// Live circuit-breaker state per device slot — the single health
    /// source `/healthz` serves and
    /// [`crate::ServeSummary::with_slot_health`] folds, so the live and
    /// end-of-run views agree by construction.
    pub fn slot_health(&self) -> Vec<SlotHealthSnapshot> {
        self.inner.slot_health()
    }

    pub fn tenant_run_us(&self) -> BTreeMap<String, u64> {
        self.inner.state.lock().unwrap().tenant_run_us.clone()
    }

    /// What reconciliation found on startup: journaled jobs, terminals
    /// accounted without a re-run, resumes, restarts, discarded
    /// artifacts and truncated journal bytes. All-zero without a
    /// [`ServeConfig::state_dir`] or on a first run.
    pub fn recovery(&self) -> RecoveryStats {
        self.inner.recovery
    }

    /// The write-ahead journal handle, when the pool is durable
    /// ([`ServeConfig::state_dir`]).
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.inner.journal.as_ref()
    }

    /// Drain queued work, stop the workers, and join them. Flushes the
    /// tracer. Idempotent.
    pub fn shutdown(&mut self) {
        self.drain();
        {
            let mut st = self.inner.state.lock().unwrap();
            st.shutting_down = true;
        }
        self.inner.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(j) = &self.inner.journal {
            j.sync();
        }
        self.inner.tracer.flush();
    }
}

impl Drop for MorphServe {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One device slot's service loop, gated by the slot's circuit breaker.
fn worker_loop(inner: &Arc<Inner>, device: u64) {
    let sole_device = inner.cfg.devices.max(1) == 1;
    let slot = device as usize - 1;
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap();
            loop {
                let mut wait = Duration::from_millis(50);
                match st.health[slot].state {
                    SlotState::Quarantined { until } => {
                        let now = Instant::now();
                        if now < until {
                            // Sitting out the cooldown: wake no later than
                            // its end, and pick nothing meanwhile.
                            wait = wait.min(until - now);
                            if st.shutting_down {
                                return;
                            }
                            let (next, _) = inner.work.wait_timeout(st, wait).unwrap();
                            st = next;
                            continue;
                        }
                        // Cooldown over: half-open. The next pick is the probe.
                        let failures = st.health[slot].consecutive_failures;
                        st.health[slot].state = SlotState::Probation;
                        inner.emit_health(device, "probation", failures);
                    }
                    SlotState::Healthy | SlotState::Probation => {}
                }
                let now_us = inner.now_us();
                if let Some(job) = {
                    let usage = st.tenant_run_us.clone();
                    st.queue.pick(&usage, device, sole_device, now_us)
                } {
                    break job;
                }
                if st.shutting_down {
                    return;
                }
                // An empty pick with backed-off jobs waiting: wake no
                // later than the earliest `not_before_us` stamp.
                if let Some(ready_at) = st.queue.soonest_ready(now_us) {
                    wait = wait.min(Duration::from_micros(
                        ready_at.saturating_sub(now_us).max(500),
                    ));
                }
                let (next, _) = inner.work.wait_timeout(st, wait).unwrap();
                st = next;
            }
        };
        run_one(inner, device, job);
    }
}

/// The hung-job watchdog: scans in-flight heartbeats and cooperatively
/// cancels any job that made no progress within `budget`, marking it for
/// eviction so the completion path requeues instead of cancelling it.
fn watchdog_loop(inner: &Arc<Inner>, budget: Duration) {
    let tick = (budget / 4).max(Duration::from_millis(5));
    loop {
        std::thread::sleep(tick);
        let mut hung: Vec<CancelToken> = Vec::new();
        {
            let mut st = inner.state.lock().unwrap();
            if st.shutting_down {
                return;
            }
            let mut mark = Vec::new();
            for (id, entry) in st.running.iter_mut() {
                let beat = entry.heartbeat.load(Ordering::Acquire);
                if beat != entry.last_beat {
                    entry.last_beat = beat;
                    entry.beat_seen = Instant::now();
                } else if entry.beat_seen.elapsed() >= budget {
                    mark.push((*id, entry.cancel.clone()));
                }
            }
            for (id, tok) in mark {
                // A caller-requested cancel wins: don't relabel it as an
                // eviction.
                if !st.cancel_requested.contains(&id)
                    && st.evicting.insert(id, "hung").is_none()
                {
                    hung.push(tok);
                }
            }
        }
        for tok in hung {
            tok.cancel();
        }
    }
}

/// Shed a job whose absolute deadline has already passed: a terminal
/// SLO miss, charged zero device time. Returns `true` when shed.
fn shed_expired(inner: &Arc<Inner>, job: &Job, device: u64, phase: &str) -> bool {
    if job.deadline_us == 0 || inner.now_us() < job.deadline_us {
        return false;
    }
    let id = job.id;
    let tenant = job.spec.tenant.clone();
    let detail = format!("shed: deadline expired {phase}");
    inner.journal(JournalRecord::Failed {
        job: id,
        permanent: true,
    });
    let mut st = inner.state.lock().unwrap();
    st.cancel_requested.remove(&id);
    st.evicting.remove(&id);
    st.statuses.insert(
        id,
        JobStatus::Failed {
            attempts: job.attempts,
            error: detail.clone(),
            permanent: true,
        },
    );
    let slo = inner.note_terminal(&mut st, id, Some(false));
    let depth = st.queue.len() as u64;
    drop(st);
    inner.note_queue_depth(depth);
    inner.observe_slo(slo);
    if let Some(store) = &inner.checkpoints {
        store.discard(id);
    }
    inner.emit_job(
        id,
        &tenant,
        JobEventKind::Failed,
        depth,
        device,
        job.deadline_us,
        detail,
    );
    inner.done.notify_all();
    true
}

/// Record a clean run on a slot: probation resolves back to healthy.
fn slot_ok(inner: &Arc<Inner>, st: &mut ServeState, device: u64) {
    let h = &mut st.health[device as usize - 1];
    h.consecutive_failures = 0;
    if matches!(h.state, SlotState::Probation) {
        h.state = SlotState::Healthy;
        inner.emit_health(device, "healthy", 0);
    }
}

/// Record an eviction-class failure on a slot: enough of them in a row —
/// or one failed probe — trips the breaker into quarantine.
fn slot_failure(inner: &Arc<Inner>, st: &mut ServeState, device: u64) {
    let h = &mut st.health[device as usize - 1];
    h.consecutive_failures += 1;
    let failures = h.consecutive_failures;
    let probe_failed = matches!(h.state, SlotState::Probation);
    if probe_failed || failures >= inner.cfg.quarantine_threshold as u64 {
        h.state = SlotState::Quarantined {
            until: Instant::now() + inner.cfg.quarantine_cooldown,
        };
        inner.emit_health(device, "quarantined", failures);
    }
}

/// Pull an evicted job off its slot: health bookkeeping, then either a
/// requeue steered away from this device (the normal path — `Eviction`
/// paired with `Requeued`) or, when the deadline or the eviction budget
/// is already spent, a terminal failure.
fn evict(
    inner: &Arc<Inner>,
    mut st: MutexGuard<'_, ServeState>,
    device: u64,
    mut job: Job,
    hub: &MetricsHub,
    reason: &'static str,
    err: &DriveError,
) {
    let id = job.id;
    let tenant = job.spec.tenant.clone();
    slot_failure(inner, &mut st, device);

    let expired = job.deadline_us != 0 && inner.now_us() >= job.deadline_us;
    if expired || job.evictions >= inner.cfg.max_evictions {
        let detail = if expired {
            format!("shed: deadline expired at requeue after {reason} eviction")
        } else {
            format!(
                "eviction budget exhausted ({} evictions): {err}",
                job.evictions
            )
        };
        inner.journal(JournalRecord::Failed {
            job: id,
            permanent: expired,
        });
        st.statuses.insert(
            id,
            JobStatus::Failed {
                attempts: job.attempts,
                error: detail.clone(),
                permanent: expired,
            },
        );
        let slo = inner.note_terminal(&mut st, id, Some(false));
        let depth = st.queue.len() as u64;
        drop(st);
        inner.note_queue_depth(depth);
        inner.observe_slo(slo);
        if let Some(store) = &inner.checkpoints {
            store.discard(id);
        }
        inner.emit_job(
            id,
            &tenant,
            JobEventKind::Failed,
            depth,
            device,
            job.deadline_us,
            detail,
        );
        inner.done.notify_all();
        return;
    }

    job.evictions += 1;
    job.avoid_device = Some(device);
    // Jittered exponential backoff over the job's total disruptions: a
    // job bouncing between dying slots must not hot-spin the queue.
    job.not_before_us =
        inner.now_us() + backoff_delay_us(id, job.evictions + job.attempts);
    // The eviction may have raised this job's token (watchdog); the
    // requeued run needs a fresh one or it would cancel itself at its
    // first host-action boundary.
    job.cancel = CancelToken::new();
    let detail = format!("evicted ({reason}): {err}");
    inner.journal(JournalRecord::Requeued {
        job: id,
        reason: detail.clone(),
    });
    st.statuses.insert(id, JobStatus::Queued);
    if let Some(m) = st.meta.get_mut(&id) {
        m.evictions = job.evictions;
        m.device = None;
    }
    st.queue.requeue(job);
    let depth = st.queue.len() as u64;
    drop(st);
    inner.note_queue_depth(depth);
    if let Some(c) = hub.counter(
        "morph_jobs_evicted_total",
        "Jobs pulled off a live device slot (device loss or hung-job watchdog)",
    ) {
        c.inc();
    }
    let t_us = inner.now_us();
    let r = reason.to_string();
    inner
        .tracer
        .emit(move || TraceEvent::Eviction { job: id, device, reason: r, t_us });
    inner.emit_job(id, &tenant, JobEventKind::Requeued, depth, device, 0, detail);
    // Wake every worker: the evicted job avoids this slot, so the pick
    // must come from another one when it exists.
    inner.work.notify_all();
}

/// Run one picked job to a terminal state, a requeue or an eviction.
fn run_one(inner: &Arc<Inner>, device: u64, mut job: Job) {
    let id = job.id;
    let tenant = job.spec.tenant.clone();

    // Deadline gate *before* the attempt is charged: an already-expired
    // job is an SLO miss, not a run.
    if shed_expired(inner, &job, device, "before start") {
        return;
    }

    job.attempts += 1;
    let attempt = job.attempts;
    let heartbeat = Arc::new(AtomicU64::new(0));

    // Transition to Running and register the entry while holding the
    // lock, so `cancel` and the watchdog can always find in-flight jobs.
    let depth = {
        let mut st = inner.state.lock().unwrap();
        st.running.insert(
            id,
            RunningEntry {
                cancel: job.cancel.clone(),
                heartbeat: Arc::clone(&heartbeat),
                last_beat: 0,
                beat_seen: Instant::now(),
            },
        );
        st.statuses.insert(id, JobStatus::Running { device });
        let now = inner.now_us();
        if let Some(m) = st.meta.get_mut(&id) {
            m.attempts = attempt;
            m.device = Some(device);
            m.started_us.get_or_insert(now);
        }
        st.queue.len() as u64
    };
    inner.note_queue_depth(depth);
    inner.journal(JournalRecord::Started {
        job: id,
        device,
        attempt: attempt as u64,
    });
    inner.emit_job(
        id,
        &tenant,
        JobEventKind::Scheduled,
        depth,
        device,
        job.deadline_us,
        format!("attempt {attempt}"),
    );
    let hub = MetricsHub::new(Arc::clone(&inner.metrics))
        .with_label("tenant", &tenant)
        .with_label("algo", job.spec.workload.algo());
    if let Some(ck) = inner.checkpoints.as_ref().and_then(|s| s.load(id)) {
        // This start resumes from a snapshot taken on an earlier slot.
        if let Some(c) = hub.counter(
            "morph_jobs_resumed_total",
            "Job starts that resumed from a checkpoint instead of from scratch",
        ) {
            c.inc();
        }
        inner.emit_job(
            id,
            &tenant,
            JobEventKind::Resumed,
            depth,
            device,
            job.deadline_us,
            format!(
                "from v{} after iteration {} ({} bytes)",
                ck.version,
                ck.iteration,
                ck.payload.len()
            ),
        );
    }
    inner.emit_job(
        id,
        &tenant,
        JobEventKind::Started,
        depth,
        device,
        job.deadline_us,
        job.spec.workload.encode(),
    );

    let checkpoint = inner.checkpoints.as_ref().map(|store| {
        CheckpointCtl::new(Arc::clone(store), id)
            .every(inner.cfg.checkpoint_every.max(1))
            .with_epoch(inner.epoch)
            .with_metrics(hub.clone())
    });
    let recovery = RecoveryOpts {
        policy: inner.cfg.policy,
        fault_plan: job.spec.fault_plan.clone(),
        barrier_watchdog: inner.cfg.barrier_watchdog,
        tracer: inner.tracer.for_job(id),
        metrics: hub.clone(),
        cancel: job.cancel.clone(),
        checkpoint,
        heartbeat: Some(Arc::clone(&heartbeat)),
        profiler: inner
            .cfg
            .profiler
            .as_ref()
            .map(|p| ProfilerScope::new(Arc::clone(p), job.spec.workload.algo())),
        tuner: if inner.cfg.autotune {
            AutoTuner::enabled(TuneConfig::default())
        } else {
            AutoTuner::default()
        },
        lens: inner.lens.clone(),
    };
    let run_started = Instant::now();
    let outcome = job.spec.workload.run(inner.cfg.sms_per_device, &recovery);
    let run_us = run_started.elapsed().as_micros() as u64;
    if let Some(h) = hub.histogram(
        "morph_job_run_us",
        "Per-job device-resident wall time in microseconds",
    ) {
        h.record(run_us);
    }

    let mut st = inner.state.lock().unwrap();
    st.running.remove(&id);
    let user_cancelled = st.cancel_requested.remove(&id);
    let evict_reason = st.evicting.remove(&id);
    *st.tenant_run_us.entry(tenant.clone()).or_insert(0) += run_us;

    match outcome {
        Ok(metrics) => {
            inner.journal(JournalRecord::Finished { job: id });
            slot_ok(inner, &mut st, device);
            st.statuses.insert(id, JobStatus::Finished { metrics });
            let slo = inner.note_terminal(&mut st, id, Some(true));
            let depth = st.queue.len() as u64;
            drop(st);
            inner.note_queue_depth(depth);
            inner.observe_slo(slo);
            if let Some(store) = &inner.checkpoints {
                store.discard(id);
            }
            inner.emit_job(
                id,
                &tenant,
                JobEventKind::Finished,
                depth,
                device,
                job.deadline_us,
                format!(
                    "{}: {} iterations, {} items, {} retries",
                    job.spec.workload.algo(),
                    metrics.iterations,
                    metrics.work_items,
                    metrics.retries
                ),
            );
        }
        Err(err) => {
            let lost = matches!(
                &err,
                DriveError::Launch { error, .. } if error.is_device_loss()
            );
            let hung = !user_cancelled
                && evict_reason.is_some()
                && classify(&err) == FailureClass::Cancelled;
            if !user_cancelled && (lost || hung) {
                let reason = if lost { "device_loss" } else { "hung" };
                evict(inner, st, device, job, &hub, reason, &err);
                return;
            }
            match classify(&err) {
                FailureClass::Cancelled => {
                    inner.journal(JournalRecord::Cancelled { job: id });
                    st.statuses.insert(id, JobStatus::Cancelled);
                    inner.note_terminal(&mut st, id, None);
                    let depth = st.queue.len() as u64;
                    drop(st);
                    inner.note_queue_depth(depth);
                    if let Some(store) = &inner.checkpoints {
                        store.discard(id);
                    }
                    inner.emit_job(
                        id,
                        &tenant,
                        JobEventKind::Cancelled,
                        depth,
                        device,
                        job.deadline_us,
                        err.to_string(),
                    );
                }
                FailureClass::Retryable
                    if attempt < job.spec.retry.max_attempts
                        && !(job.deadline_us != 0 && inner.now_us() >= job.deadline_us) =>
                {
                    let detail = format!("attempt {attempt} failed: {err}");
                    // A watchdog cancel can race a retryable failure; the
                    // requeued run must not inherit a raised token.
                    if job.cancel.is_cancelled() {
                        job.cancel = CancelToken::new();
                    }
                    // Back off before the retry, scaled by attempts: a
                    // deterministically failing job must not monopolise
                    // its slot in a tight loop.
                    job.not_before_us = inner.now_us() + backoff_delay_us(id, attempt);
                    inner.journal(JournalRecord::Requeued {
                        job: id,
                        reason: detail.clone(),
                    });
                    st.statuses.insert(id, JobStatus::Queued);
                    st.queue.requeue(job);
                    let depth = st.queue.len() as u64;
                    drop(st);
                    inner.note_queue_depth(depth);
                    inner.emit_job(
                        id,
                        &tenant,
                        JobEventKind::Requeued,
                        depth,
                        device,
                        0,
                        detail,
                    );
                    inner.work.notify_one();
                    // Not terminal: skip the `done` notification below.
                    return;
                }
                FailureClass::Retryable
                    if job.deadline_us != 0 && inner.now_us() >= job.deadline_us =>
                {
                    // Deadline gate at requeue: the retry budget may
                    // remain, but the deadline is gone — shed instead of
                    // burning more device time.
                    let detail = format!("shed: deadline expired at requeue ({err})");
                    inner.journal(JournalRecord::Failed {
                        job: id,
                        permanent: true,
                    });
                    st.statuses.insert(
                        id,
                        JobStatus::Failed {
                            attempts: attempt,
                            error: detail.clone(),
                            permanent: true,
                        },
                    );
                    let slo = inner.note_terminal(&mut st, id, Some(false));
                    let depth = st.queue.len() as u64;
                    drop(st);
                    inner.note_queue_depth(depth);
                    inner.observe_slo(slo);
                    if let Some(store) = &inner.checkpoints {
                        store.discard(id);
                    }
                    inner.emit_job(
                        id,
                        &tenant,
                        JobEventKind::Failed,
                        depth,
                        device,
                        job.deadline_us,
                        detail,
                    );
                }
                class => {
                    let permanent = class == FailureClass::Permanent;
                    inner.journal(JournalRecord::Failed {
                        job: id,
                        permanent,
                    });
                    st.statuses.insert(
                        id,
                        JobStatus::Failed {
                            attempts: attempt,
                            error: err.to_string(),
                            permanent,
                        },
                    );
                    let slo = inner.note_terminal(&mut st, id, Some(false));
                    let depth = st.queue.len() as u64;
                    drop(st);
                    inner.note_queue_depth(depth);
                    inner.observe_slo(slo);
                    if let Some(store) = &inner.checkpoints {
                        store.discard(id);
                    }
                    inner.emit_job(
                        id,
                        &tenant,
                        JobEventKind::Failed,
                        depth,
                        device,
                        job.deadline_us,
                        format!(
                            "{} after {attempt} attempt(s): {err}",
                            if permanent { "permanent" } else { "retries exhausted" }
                        ),
                    );
                }
            }
        }
    }
    inner.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobMetrics, Priority, Workload};
    use morph_gpu_sim::FaultPlan;
    use morph_trace::{RingSink, TraceReport};

    fn small_mst(seed: u64) -> Workload {
        Workload::Mst {
            nodes: 60,
            edges: 180,
            seed,
        }
    }

    #[test]
    fn a_single_job_runs_to_finished() {
        let ring = Arc::new(RingSink::new(4096));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                ..ServeConfig::default()
            },
            tracer,
        );
        let id = pool.submit(JobSpec::new("t0", small_mst(1))).unwrap();
        let status = pool.wait(id).unwrap();
        match status {
            JobStatus::Finished {
                metrics: JobMetrics { iterations, .. },
            } => assert!(iterations > 0),
            other => panic!("expected Finished, got {other:?}"),
        }
        pool.shutdown();
        let report = TraceReport::from_events(ring.events().iter());
        let row = &report.jobs[&id];
        assert_eq!(row.outcome, Some(JobEventKind::Finished));
        assert_eq!(row.starts, 1);
        assert_eq!(row.device, Some(1));
        assert!(row.turnaround_us().is_some());
    }

    #[test]
    fn jobs_publish_tenant_tagged_metrics_that_round_trip() {
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 2,
                ..ServeConfig::default()
            },
            Tracer::disabled(),
        );
        let a = pool.submit(JobSpec::new("acme", small_mst(7))).unwrap();
        let b = pool
            .submit(JobSpec::new("zeta", Workload::Dmr { triangles: 300, seed: 8 }))
            .unwrap();
        pool.wait(a);
        pool.wait(b);
        let snap = pool.metrics().snapshot();
        pool.shutdown();

        // One latency sample per job, partitioned by tenant and algorithm.
        let latency: Vec<_> = snap
            .series
            .iter()
            .filter(|s| s.name == "morph_job_run_us")
            .collect();
        assert_eq!(latency.len(), 2, "one series per (tenant, algo) pair");
        for s in &latency {
            assert!(s.labels.iter().any(|(k, _)| k == "tenant"));
            assert!(s.labels.iter().any(|(k, _)| k == "algo"));
            match &s.value {
                morph_metrics::SampleValue::Histogram(h) => assert_eq!(h.count, 1),
                other => panic!("expected latency histogram, got {other:?}"),
            }
        }
        // Engine cost-model series rode the same hub.
        assert!(
            snap.series
                .iter()
                .any(|s| s.name == "morph_gmem_accesses_total"),
            "pipeline launches must publish cost-model counters"
        );
        // Every slot publishes its health gauge, healthy at rest.
        let health: Vec<_> = snap
            .series
            .iter()
            .filter(|s| s.name == "morph_device_health")
            .collect();
        assert_eq!(health.len(), 2, "one gauge per device slot");
        for s in &health {
            assert!(matches!(
                s.value,
                morph_metrics::SampleValue::Gauge(2)
            ));
        }

        // Exposition text is valid: every sample covered by TYPE + HELP.
        let text = morph_metrics::expose(&snap);
        let parsed = morph_metrics::parse_exposition(&text).expect("valid exposition");
        assert!(parsed.samples.iter().any(|s| s.name == "morph_job_run_us_count"));
    }

    #[test]
    fn saturated_queue_rejects_and_traces() {
        let ring = Arc::new(RingSink::new(4096));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        // Zero devices is clamped to 1, but a 1-capacity queue with slow
        // jobs saturates immediately.
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                queue_capacity: 1,
                ..ServeConfig::default()
            },
            tracer,
        );
        // Fill the only device and the only queue slot, then overflow.
        let a = pool
            .submit(JobSpec::new("t", Workload::Dmr { triangles: 400, seed: 1 }))
            .unwrap();
        let b = pool.submit(JobSpec::new("t", small_mst(2)));
        let c = pool.submit(JobSpec::new("t", small_mst(3)));
        // At least one of b/c must have been rejected or both admitted
        // (the first job may have been picked already, freeing a slot);
        // saturation is timing-dependent, so just drain and assert the
        // invariant: every *admitted* job reached a terminal state.
        pool.drain();
        assert!(pool.wait(a).unwrap().is_terminal());
        for r in [b, c].into_iter().flatten() {
            assert!(pool.wait(r).unwrap().is_terminal());
        }
        pool.shutdown();
    }

    #[test]
    fn cancelling_a_queued_job_is_immediate() {
        let ring = Arc::new(RingSink::new(4096));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                ..ServeConfig::default()
            },
            tracer,
        );
        // Occupy the device with a longer job, queue a victim behind it.
        let long = pool
            .submit(JobSpec::new("t", Workload::Dmr { triangles: 600, seed: 5 }))
            .unwrap();
        let victim = pool
            .submit(JobSpec::new("t", small_mst(6)).with_priority(Priority::Low))
            .unwrap();
        // The victim may already be running if the device freed quickly;
        // cancel handles both cases.
        assert!(pool.cancel(victim));
        let status = pool.wait(victim).unwrap();
        assert!(
            matches!(status, JobStatus::Cancelled),
            "victim should be cancelled, got {status:?}"
        );
        assert!(matches!(
            pool.wait(long).unwrap(),
            JobStatus::Finished { .. }
        ));
        pool.shutdown();
    }

    #[test]
    fn fair_share_interleaves_two_tenants() {
        let ring = Arc::new(RingSink::new(1 << 14));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                queue_capacity: 64,
                ..ServeConfig::default()
            },
            tracer,
        );
        // 4 jobs for tenant A submitted first, then 4 for tenant B. With
        // strict FIFO, all A-jobs would run before any B-job; fair share
        // must alternate once A has accrued device time.
        let mut ids = Vec::new();
        for s in 0..4 {
            ids.push(pool.submit(JobSpec::new("a", small_mst(s))).unwrap());
        }
        for s in 4..8 {
            ids.push(pool.submit(JobSpec::new("b", small_mst(s))).unwrap());
        }
        pool.drain();
        pool.shutdown();
        let report = TraceReport::from_events(ring.events().iter());
        // All 8 finished.
        for id in &ids {
            assert_eq!(report.jobs[id].outcome, Some(JobEventKind::Finished));
        }
        // The first B-job must not have waited for all four A-jobs: find
        // start order and check a B-job started before the last A-job.
        let mut starts: Vec<(u64, String)> = report
            .jobs
            .values()
            .map(|r| (r.started_us.unwrap(), r.tenant.clone()))
            .collect();
        starts.sort();
        let order: Vec<&str> = starts.iter().map(|(_, t)| t.as_str()).collect();
        let first_b = order.iter().position(|t| *t == "b").unwrap();
        assert!(
            first_b < order.len() - 1 && order[first_b + 1..].contains(&"a"),
            "fair share should interleave tenants, got {order:?}"
        );
    }

    #[test]
    fn an_expired_deadline_is_shed_before_start() {
        let ring = Arc::new(RingSink::new(4096));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                ..ServeConfig::default()
            },
            tracer,
        );
        // Occupy the device long enough that the victim's 1 ms deadline
        // has certainly passed by the time a slot frees up.
        let long = pool
            .submit(JobSpec::new("t", Workload::Dmr { triangles: 800, seed: 1 }))
            .unwrap();
        // Don't queue the victim until the long job holds the device:
        // queued together, its earlier deadline would sort it first.
        while !matches!(pool.status(long), Some(JobStatus::Running { .. })) {
            if pool.status(long).is_some_and(|s| s.is_terminal()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let victim = pool
            .submit(
                JobSpec::new("t", small_mst(2)).with_deadline(Duration::from_millis(1)),
            )
            .unwrap();
        assert!(matches!(pool.wait(long).unwrap(), JobStatus::Finished { .. }));
        let status = pool.wait(victim).unwrap();
        match status {
            JobStatus::Failed { error, attempts, .. } => {
                assert!(error.contains("shed"), "unexpected error: {error}");
                assert_eq!(attempts, 0, "a shed job must not be charged an attempt");
            }
            other => panic!("expected a shed failure, got {other:?}"),
        }
        pool.shutdown();
        let report = TraceReport::from_events(ring.events().iter());
        let row = &report.jobs[&victim];
        assert_eq!(row.outcome, Some(JobEventKind::Failed));
        assert_eq!(row.starts, 0, "shed jobs never emit Started");
        assert!(row.missed_deadline(), "shedding is an SLO miss");
    }

    #[test]
    fn device_loss_evicts_and_resumes_on_another_slot() {
        let ring = Arc::new(RingSink::new(1 << 14));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 2,
                checkpoint_every: 1,
                ..ServeConfig::default()
            },
            tracer,
        );
        // The loss fires at launch 2, after two iterations checkpointed.
        let id = pool
            .submit(
                JobSpec::new("t", Workload::Mst { nodes: 120, edges: 360, seed: 11 })
                    .with_fault_plan(Arc::new(FaultPlan::new().with_device_loss(2, 0, 0))),
            )
            .unwrap();
        let status = pool.wait(id).unwrap();
        assert!(
            matches!(status, JobStatus::Finished { .. }),
            "evicted job must finish after resume, got {status:?}"
        );
        pool.shutdown();

        let report = TraceReport::from_events(ring.events().iter());
        let row = &report.jobs[&id];
        assert_eq!(row.outcome, Some(JobEventKind::Finished));
        assert_eq!(row.evictions, 1);
        assert_eq!(row.resumes, 1, "the restart must resume from the checkpoint");
        assert_eq!(row.requeues, 1);
        assert_eq!(row.starts, 2);
        assert!(row.checkpoints >= 2, "iterations 0 and 1 must have checkpointed");
        // Cross-slot: the final run's device differs from the evicting one.
        let evicted_from = ring
            .events()
            .iter()
            .find_map(|ev| match ev {
                TraceEvent::Eviction { device, .. } => Some(*device),
                _ => None,
            })
            .expect("an Eviction event must be emitted");
        assert_ne!(
            row.device,
            Some(evicted_from),
            "resume must land on a different slot"
        );
    }

    #[test]
    fn checkpointing_disabled_means_no_store_and_no_snapshots() {
        let mut pool = MorphServe::start(ServeConfig::default(), Tracer::disabled());
        assert!(pool.checkpoints().is_none(), "default config must not checkpoint");
        let id = pool.submit(JobSpec::new("t", small_mst(3))).unwrap();
        assert!(matches!(pool.wait(id).unwrap(), JobStatus::Finished { .. }));
        pool.shutdown();
    }

    #[test]
    fn repeated_device_loss_quarantines_the_slot_then_probes_it_back() {
        let ring = Arc::new(RingSink::new(1 << 14));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig {
                devices: 1,
                checkpoint_every: 1,
                quarantine_threshold: 3,
                quarantine_cooldown: Duration::from_millis(20),
                max_evictions: 4,
                ..ServeConfig::default()
            },
            tracer,
        );
        // A plan that kills the device on every launch: the sole slot
        // accumulates consecutive evictions until the breaker trips, and
        // the job fails once its eviction budget is spent.
        let mut plan = FaultPlan::new();
        for launch in 0..24 {
            plan = plan.with_device_loss(launch, 0, 0);
        }
        let doomed = pool
            .submit(
                JobSpec::new("t", small_mst(4)).with_fault_plan(Arc::new(plan)),
            )
            .unwrap();
        let status = pool.wait(doomed).unwrap();
        assert!(
            matches!(status, JobStatus::Failed { .. }),
            "doomed job must fail after its eviction budget, got {status:?}"
        );
        // A clean follow-up job is the probe that heals the slot.
        let probe = pool.submit(JobSpec::new("t", small_mst(5))).unwrap();
        assert!(matches!(pool.wait(probe).unwrap(), JobStatus::Finished { .. }));
        pool.shutdown();

        let report = TraceReport::from_events(ring.events().iter());
        let states: Vec<&str> = report.health.iter().map(|h| h.state.as_str()).collect();
        assert!(
            states.contains(&"quarantined"),
            "breaker must trip: {states:?}"
        );
        assert!(
            states.contains(&"probation"),
            "cooldown must half-open the slot: {states:?}"
        );
        assert_eq!(
            states.last().copied(),
            Some("healthy"),
            "the clean probe must close the breaker: {states:?}"
        );
        assert_eq!(report.jobs[&doomed].evictions, 4);
    }
}
