//! The live introspection plane: a dependency-free HTTP/1.1 server
//! embedded in the pool, in the same hand-rolled spirit as the JSON
//! codec in `morph-trace`.
//!
//! Read-only endpoints, served from one polling thread:
//!
//! * `GET /metrics` — the pool's live registry as Prometheus exposition
//!   text (`morph_metrics::expose`), scrapeable mid-run.
//! * `GET /healthz` — per-slot circuit-breaker state (the same
//!   [`crate::MorphServe::slot_health`] source the end-of-run summary
//!   uses), SLO burn rates, recent alerts and flight-recorder dump count
//!   as JSON. Returns `503` while any slot is quarantined or any
//!   tenant's burn-rate alert is firing.
//! * `GET /jobs` — queued/running/terminal jobs as JSON, with wait/run
//!   timing, attempt and eviction counts from the pool's live bookkeeping.
//! * `GET /lens` — the morph-lens attribution snapshot as JSON: the
//!   region registry plus cumulative phase × structure traffic rows and
//!   the hot-address table. Returns `404` unless the pool was started
//!   with [`crate::ServeConfig::lens`] — the hub is disabled and holds
//!   nothing.
//!
//! The listener is bound synchronously in [`crate::MorphServe::start`]
//! (so `127.0.0.1:0` tests learn the port before the first request) and
//! polled non-blocking; the thread exits with the workers once
//! `shutting_down` is set. One request per connection (`Connection:
//! close`) keeps the loop free of keep-alive state.

use crate::job::JobStatus;
use crate::pool::Inner;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Accept-and-serve loop; returns when the pool starts shutting down.
pub(crate) fn serve_loop(inner: &Arc<Inner>, listener: TcpListener) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking introspection listener");
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(inner, stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if inner.state.lock().unwrap().shutting_down {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle(inner: &Arc<Inner>, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Read until the header terminator (requests are header-only GETs).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        return respond(&mut stream, 405, "Method Not Allowed", "text/plain", "GET only\n");
    }
    match path {
        "/" => respond(
            &mut stream,
            200,
            "OK",
            "text/plain",
            "morph-serve introspection: /metrics /healthz /jobs /lens\n",
        ),
        "/metrics" => {
            let text = morph_metrics::expose(&inner.metrics.snapshot());
            respond(
                &mut stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &text,
            )
        }
        "/healthz" => {
            let (status, body) = healthz_json(inner);
            let (code, reason) = if status == "ok" {
                (200, "OK")
            } else {
                (503, "Service Unavailable")
            };
            respond(&mut stream, code, reason, "application/json", &body)
        }
        "/jobs" => respond(&mut stream, 200, "OK", "application/json", &jobs_json(inner)),
        "/lens" => {
            if inner.lens.is_enabled() {
                let body = inner.lens.snapshot().to_json();
                respond(&mut stream, 200, "OK", "application/json", &body)
            } else {
                respond(
                    &mut stream,
                    404,
                    "Not Found",
                    "text/plain",
                    "lens disabled (start with ServeConfig::lens / --lens)\n",
                )
            }
        }
        _ => respond(&mut stream, 404, "Not Found", "text/plain", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    code: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Build the `/healthz` body. Overall status is `"ok"` unless a slot is
/// quarantined or a burn-rate alert is firing — the slot states come
/// from the same circuit-breaker source as `ServeSummary`, so the live
/// and end-of-run views can never disagree.
fn healthz_json(inner: &Arc<Inner>) -> (&'static str, String) {
    let slots = inner.slot_health();
    let now_us = inner.now_us();
    let burns = inner
        .slo
        .as_ref()
        .map(|m| m.burn_rates(now_us))
        .unwrap_or_default();
    let alerts = inner
        .slo
        .as_ref()
        .map(|m| m.recent_alerts())
        .unwrap_or_default();
    let degraded = slots.iter().any(|s| s.state == "quarantined")
        || burns.iter().any(|b| b.firing);
    let status = if degraded { "degraded" } else { "ok" };

    let slot_objs: Vec<String> = slots
        .iter()
        .map(|s| {
            format!(
                "{{\"device\":{},\"state\":\"{}\",\"consecutive_failures\":{}}}",
                s.device, s.state, s.consecutive_failures
            )
        })
        .collect();
    let burn_objs: Vec<String> = burns
        .iter()
        .map(|b| {
            format!(
                "{{\"tenant\":\"{}\",\"fast\":{:.3},\"slow\":{:.3},\"firing\":{}}}",
                esc(&b.tenant),
                b.fast,
                b.slow,
                b.firing
            )
        })
        .collect();
    let alert_objs: Vec<String> = alerts
        .iter()
        .map(|a| {
            format!(
                "{{\"tenant\":\"{}\",\"value\":{:.3},\"threshold\":{:.3},\"t_us\":{},\"detail\":\"{}\"}}",
                esc(&a.tenant),
                a.value,
                a.threshold,
                a.t_us,
                esc(&a.detail)
            )
        })
        .collect();
    let rec = inner.recovery;
    let body = format!(
        "{{\"status\":\"{status}\",\"t_us\":{now_us},\"slots\":[{}],\"burn_rates\":[{}],\"alerts\":[{}],\"flight_dumps\":{},\"recovery\":{{\"journaled_jobs\":{},\"recovered\":{},\"replayed\":{},\"discarded\":{},\"terminal\":{},\"journal_truncated_bytes\":{}}}}}\n",
        slot_objs.join(","),
        burn_objs.join(","),
        alert_objs.join(","),
        inner.flight.dumps(),
        rec.journaled_jobs,
        rec.recovered,
        rec.replayed,
        rec.discarded,
        rec.terminal(),
        rec.truncated_bytes
    );
    (status, body)
}

/// Build the `/jobs` body from the pool's live bookkeeping.
fn jobs_json(inner: &Arc<Inner>) -> String {
    let st = inner.state.lock().unwrap();
    let mut objs: Vec<String> = Vec::with_capacity(st.meta.len());
    for (id, meta) in st.meta.iter() {
        let state = match st.statuses.get(id) {
            Some(JobStatus::Queued) => "queued",
            Some(JobStatus::Running { .. }) => "running",
            Some(JobStatus::Finished { .. }) => "finished",
            Some(JobStatus::Failed { .. }) => "failed",
            Some(JobStatus::Cancelled) => "cancelled",
            None => "unknown",
        };
        let opt = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
        objs.push(format!(
            "{{\"job\":{id},\"tenant\":\"{}\",\"workload\":\"{}\",\"priority\":\"{}\",\"state\":\"{state}\",\"device\":{},\"attempts\":{},\"evictions\":{},\"submitted_us\":{},\"started_us\":{},\"ended_us\":{},\"deadline_us\":{}}}",
            esc(&meta.tenant),
            esc(&meta.workload),
            meta.priority,
            opt(meta.device),
            meta.attempts,
            meta.evictions,
            meta.submitted_us,
            opt(meta.started_us),
            opt(meta.ended_us),
            meta.deadline_us,
        ));
    }
    format!("{{\"t_us\":{},\"jobs\":[{}]}}\n", inner.now_us(), objs.join(","))
}
