//! The durable write-ahead job journal — the serve layer's crash-
//! consistency spine.
//!
//! Every job lifecycle transition (admitted, started, checkpointed,
//! requeued, finished, failed, cancelled — shedding is a permanent
//! failure) is appended to `journal.wal` as a length-prefixed,
//! CRC32-checksummed record before the in-memory transition takes
//! effect. On restart, [`Journal::open`] replays the file, truncates a
//! torn tail back to the last good prefix (a record cut mid-write by a
//! crash must not poison the history before it), and [`fold`] rebuilds
//! each job's last known state — the input to the pool's reconciliation
//! against the verified checkpoint store.
//!
//! ## Record framing
//!
//! ```text
//! [u32 len][u32 crc32][payload: len bytes]
//! ```
//!
//! `crc32` (IEEE, shared with the checkpoint store via
//! [`morph_core::crc32`]) covers the payload only; `len` is bounded by
//! [`MAX_RECORD_LEN`] so a corrupt length prefix cannot trigger a huge
//! allocation. The payload starts with a `u32` record kind; a record
//! whose CRC verifies but whose kind is unknown is *skipped*, not fatal
//! — the same additive-decoding contract the trace schema keeps.
//!
//! ## Fsync policy
//!
//! Appends write through to the file descriptor immediately; fsync is
//! batched — forced on terminal records (a finished job must never be
//! re-run because its terminal record evaporated) and otherwise issued
//! every [`FSYNC_BATCH`] records. A denied fsync (see
//! [`FaultPlan::with_fsync_denial`]) degrades durability but never the
//! run.
//!
//! ## Injected write faults
//!
//! A torn or short write (see [`FaultPlan::with_torn_write`] /
//! [`FaultPlan::with_short_write`]) leaves the partial frame on disk and
//! *poisons* the journal: subsequent appends are dropped silently, as if
//! the process had died at that write. The next open then exercises the
//! real recovery path — truncate to the last good prefix, re-run what
//! the journal no longer remembers.

use crate::job::{JobSpec, Priority, Workload};
use morph_core::checkpoint::{crc32, PayloadReader, PayloadWriter};
use morph_gpu_sim::{AppendFault, FaultPlan};
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// On-disk journal layout version (first payload of every file).
pub const JOURNAL_SCHEMA_VERSION: u32 = 1;

/// Records between batched fsyncs (terminal records always sync).
const FSYNC_BATCH: u64 = 8;

/// Upper bound on one record's payload, enforced on both sides so a
/// corrupt length prefix is detected instead of allocated.
const MAX_RECORD_LEN: u32 = 1 << 20;

/// One journaled job-lifecycle transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// The job passed admission. Carries everything needed to rebuild
    /// its [`JobSpec`] after a crash: the deadline is stored *relative*
    /// (milliseconds) because absolute stamps die with the old process's
    /// epoch. The job's fault plan is deliberately not journaled — its
    /// fire-once state died with the process.
    Admitted {
        job: u64,
        tenant: String,
        priority: Priority,
        deadline_ms: u64,
        max_attempts: u32,
        /// The workload in `replay` line encoding (`Workload::encode`).
        workload: String,
    },
    /// An attempt began on `device` (1-based).
    Started { job: u64, device: u64, attempt: u64 },
    /// A snapshot reached the checkpoint store.
    Checkpointed { job: u64, version: u64, iteration: u64 },
    /// The job went back to the queue (eviction or retryable failure).
    Requeued { job: u64, reason: String },
    Finished { job: u64 },
    Failed { job: u64, permanent: bool },
    Cancelled { job: u64 },
}

impl JournalRecord {
    /// Terminal records force an fsync: exactly-once accounting hinges
    /// on them surviving the crash that follows.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JournalRecord::Finished { .. }
                | JournalRecord::Failed { .. }
                | JournalRecord::Cancelled { .. }
        )
    }

    pub fn job(&self) -> u64 {
        match self {
            JournalRecord::Admitted { job, .. }
            | JournalRecord::Started { job, .. }
            | JournalRecord::Checkpointed { job, .. }
            | JournalRecord::Requeued { job, .. }
            | JournalRecord::Finished { job }
            | JournalRecord::Failed { job, .. }
            | JournalRecord::Cancelled { job } => *job,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        match self {
            JournalRecord::Admitted {
                job,
                tenant,
                priority,
                deadline_ms,
                max_attempts,
                workload,
            } => {
                w.u32(1);
                w.u64(*job);
                w.str(tenant);
                w.str(priority.as_str());
                w.u64(*deadline_ms);
                w.u32(*max_attempts);
                w.str(workload);
            }
            JournalRecord::Started { job, device, attempt } => {
                w.u32(2);
                w.u64(*job);
                w.u64(*device);
                w.u64(*attempt);
            }
            JournalRecord::Checkpointed { job, version, iteration } => {
                w.u32(3);
                w.u64(*job);
                w.u64(*version);
                w.u64(*iteration);
            }
            JournalRecord::Requeued { job, reason } => {
                w.u32(4);
                w.u64(*job);
                w.str(reason);
            }
            JournalRecord::Finished { job } => {
                w.u32(5);
                w.u64(*job);
            }
            JournalRecord::Failed { job, permanent } => {
                w.u32(6);
                w.u64(*job);
                w.u32(u32::from(*permanent));
            }
            JournalRecord::Cancelled { job } => {
                w.u32(7);
                w.u64(*job);
            }
        }
        w.finish()
    }

    /// Decode one verified payload. `None` for an unknown kind (skip it:
    /// additive decoding) or a malformed body.
    fn decode(payload: &[u8]) -> Option<JournalRecord> {
        let mut r = PayloadReader::new(payload);
        let rec = match r.u32()? {
            1 => JournalRecord::Admitted {
                job: r.u64()?,
                tenant: r.str()?,
                priority: Priority::parse(&r.str()?)?,
                deadline_ms: r.u64()?,
                max_attempts: r.u32()?,
                workload: r.str()?,
            },
            2 => JournalRecord::Started {
                job: r.u64()?,
                device: r.u64()?,
                attempt: r.u64()?,
            },
            3 => JournalRecord::Checkpointed {
                job: r.u64()?,
                version: r.u64()?,
                iteration: r.u64()?,
            },
            4 => JournalRecord::Requeued {
                job: r.u64()?,
                reason: r.str()?,
            },
            5 => JournalRecord::Finished { job: r.u64()? },
            6 => JournalRecord::Failed {
                job: r.u64()?,
                permanent: r.u32()? != 0,
            },
            7 => JournalRecord::Cancelled { job: r.u64()? },
            _ => return None,
        };
        r.exhausted().then_some(rec)
    }
}

/// Frame one record: `[len][crc][payload]`.
fn frame(rec: &JournalRecord) -> Vec<u8> {
    let payload = rec.encode();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// What [`Journal::open`]/[`scan`] found in an existing file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Every decodable record of the good prefix, in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes past the last good record (a torn tail — truncated by
    /// `open`, merely reported by `scan`).
    pub truncated_bytes: u64,
    /// CRC-verified records whose kind this build does not know (skipped).
    pub skipped: u64,
}

/// Read-only scan of a journal file: replays the good prefix without
/// touching the file, so a live journal can be inspected from another
/// process (the crash-soak harness polls this).
pub fn scan(path: impl AsRef<Path>) -> std::io::Result<JournalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => return Err(e),
    };
    Ok(scan_bytes(&bytes))
}

fn scan_bytes(bytes: &[u8]) -> JournalScan {
    let mut out = JournalScan::default();
    let mut pos = 0usize;
    let mut good_end = 0usize;
    // The schema-version preamble is a plain u32 frame-less prefix.
    if bytes.len() >= 4 {
        let ver = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        if ver == JOURNAL_SCHEMA_VERSION {
            pos = 4;
            good_end = 4;
        }
    }
    if pos == 0 {
        // Missing/foreign preamble: an empty or torn-at-birth file.
        out.truncated_bytes = bytes.len() as u64;
        return out;
    }
    // Loop ends at the first frame that does not verify: a partial
    // header is simply a torn tail.
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break; // corrupt length prefix
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            break; // partial payload = torn tail
        };
        if crc32(payload) != crc {
            break; // bit rot or a write torn inside the payload
        }
        pos += 8 + len as usize;
        good_end = pos;
        match JournalRecord::decode(payload) {
            Some(rec) => out.records.push(rec),
            None => out.skipped += 1, // future kind: skip, keep scanning
        }
    }
    out.truncated_bytes = (bytes.len() - good_end) as u64;
    out
}

struct JournalFile {
    /// `None` after an injected write fault: the journal behaves as if
    /// the process died at that write — every later append is dropped.
    file: Option<std::fs::File>,
    since_sync: u64,
}

/// Append handle over `journal.wal`. Shared across the pool's worker
/// threads; appends serialize on an internal mutex (they are tiny and
/// rare relative to kernel work).
pub struct Journal {
    file: Mutex<JournalFile>,
    faults: Option<Arc<FaultPlan>>,
    appends: AtomicU64,
    fsyncs_denied: AtomicU64,
    write_faults: AtomicU64,
    /// First append/sync I/O error, taken once by the pool to surface a
    /// `TraceEvent::Alert` instead of a panic.
    error: Mutex<Option<String>>,
}

impl Journal {
    /// Open (or create) the journal at `path`: replay the good prefix,
    /// truncate a torn tail, position for append. Returns the handle and
    /// the scan of what survived.
    pub fn open(
        path: impl AsRef<Path>,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<(Journal, JournalScan)> {
        let path = path.as_ref();
        let mut preexisting = true;
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                preexisting = false;
                Vec::new()
            }
            Err(e) => return Err(e),
        };
        let scan = scan_bytes(&bytes);
        let good_end = bytes.len() as u64 - scan.truncated_bytes;
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false) // set_len below keeps exactly the good prefix
            .append(false)
            .open(path)?;
        file.set_len(good_end)?; // drop the torn tail
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        if good_end == 0 {
            file.write_all(&JOURNAL_SCHEMA_VERSION.to_le_bytes())?;
            file.sync_data()?;
        }
        let scan = if preexisting { scan } else { JournalScan::default() };
        Ok((
            Journal {
                file: Mutex::new(JournalFile {
                    file: Some(file),
                    since_sync: 0,
                }),
                faults,
                appends: AtomicU64::new(0),
                fsyncs_denied: AtomicU64::new(0),
                write_faults: AtomicU64::new(0),
                error: Mutex::new(None),
            },
            scan,
        ))
    }

    /// Append one record (write-ahead: call *before* the transition takes
    /// effect). Never panics: I/O errors are sticky and queryable via
    /// [`Journal::take_error`]; injected write faults poison the handle.
    pub fn append(&self, rec: &JournalRecord) {
        let bytes = frame(rec);
        let mut jf = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let JournalFile { file: slot, since_sync } = &mut *jf;
        let Some(file) = slot.as_mut() else {
            return; // poisoned: the simulated crash already happened
        };
        if let Some(fault) = self.faults.as_ref().and_then(|p| p.fail_append()) {
            self.write_faults.fetch_add(1, Ordering::AcqRel);
            let cut = match fault {
                AppendFault::Torn => (bytes.len() / 2).max(1),
                AppendFault::Short => 4, // just the length prefix
            };
            let _ = file.write_all(&bytes[..cut.min(bytes.len())]);
            let _ = file.sync_data();
            *slot = None; // as-if-crashed from here on
            return;
        }
        if let Err(e) = file.write_all(&bytes) {
            self.note_error(&e);
            *slot = None;
            return;
        }
        *since_sync += 1;
        if rec.is_terminal() || *since_sync >= FSYNC_BATCH {
            if self.faults.as_ref().is_some_and(|p| p.deny_fsync()) {
                self.fsyncs_denied.fetch_add(1, Ordering::AcqRel);
            } else if let Err(e) = file.sync_data() {
                self.note_error(&e);
            }
            *since_sync = 0;
        }
        self.appends.fetch_add(1, Ordering::AcqRel);
    }

    /// Force out any batched-but-unsynced appends (shutdown path).
    pub fn sync(&self) {
        let mut jf = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let JournalFile { file: slot, since_sync } = &mut *jf;
        if let Some(file) = slot.as_mut() {
            if *since_sync > 0 {
                if let Err(e) = file.sync_data() {
                    self.note_error(&e);
                }
                *since_sync = 0;
            }
        }
    }

    fn note_error(&self, e: &std::io::Error) {
        let mut slot = self.error.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(e.to_string());
        }
    }

    /// The first append/sync I/O error, if any — consumed so the caller
    /// alerts exactly once.
    pub fn take_error(&self) -> Option<String> {
        self.error.lock().unwrap_or_else(|p| p.into_inner()).take()
    }

    /// Records successfully appended by this handle.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Acquire)
    }

    /// Batched fsyncs skipped by injected denial (durability degraded).
    pub fn fsyncs_denied(&self) -> u64 {
        self.fsyncs_denied.load(Ordering::Acquire)
    }

    /// Appends torn or shortened by injected faults (journal poisoned).
    pub fn write_faults(&self) -> u64 {
        self.write_faults.load(Ordering::Acquire)
    }
}

/// A job's terminal outcome as the journal remembers it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOutcome {
    Finished,
    Failed { permanent: bool },
    Cancelled,
}

/// One job's state folded from the journal — the reconciliation input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobLedger {
    pub tenant: String,
    pub priority: Priority,
    pub deadline_ms: u64,
    pub max_attempts: u32,
    pub workload: String,
    /// Attempts the old incarnations started (consumed retry budget).
    pub starts: u64,
    pub requeues: u64,
    /// Newest journaled snapshot `(version, iteration)`.
    pub checkpoint: Option<(u64, u64)>,
    pub terminal: Option<JournalOutcome>,
    /// Terminal records seen — more than one is a double-run (`dup`).
    pub terminal_records: u64,
}

impl JobLedger {
    /// Rebuild the admission-time [`JobSpec`]. `None` when the workload
    /// encoding cannot be parsed (a discarded artifact).
    pub fn spec(&self) -> Option<JobSpec> {
        let fields: Vec<&str> = self.workload.split_whitespace().collect();
        let workload = Workload::parse(&fields)?;
        let mut spec = JobSpec::new(&self.tenant, workload)
            .with_priority(self.priority)
            .with_retry(self.max_attempts);
        if self.deadline_ms > 0 {
            spec = spec.with_deadline(Duration::from_millis(self.deadline_ms));
        }
        Some(spec)
    }
}

/// Fold a replayed record sequence into per-job ledgers. Records for a
/// job with no surviving `Admitted` (impossible from truncation alone,
/// possible from a skipped future-kind record) are dropped defensively.
pub fn fold(records: &[JournalRecord]) -> BTreeMap<u64, JobLedger> {
    let mut jobs: BTreeMap<u64, JobLedger> = BTreeMap::new();
    for rec in records {
        match rec {
            JournalRecord::Admitted {
                job,
                tenant,
                priority,
                deadline_ms,
                max_attempts,
                workload,
            } => {
                let ledger = jobs.entry(*job).or_default();
                ledger.tenant = tenant.clone();
                ledger.priority = *priority;
                ledger.deadline_ms = *deadline_ms;
                ledger.max_attempts = *max_attempts;
                ledger.workload = workload.clone();
            }
            JournalRecord::Started { job, .. } => {
                if let Some(ledger) = jobs.get_mut(job) {
                    ledger.starts += 1;
                }
            }
            JournalRecord::Checkpointed { job, version, iteration } => {
                if let Some(ledger) = jobs.get_mut(job) {
                    ledger.checkpoint = Some((*version, *iteration));
                }
            }
            JournalRecord::Requeued { job, .. } => {
                if let Some(ledger) = jobs.get_mut(job) {
                    ledger.requeues += 1;
                }
            }
            JournalRecord::Finished { job } => {
                if let Some(ledger) = jobs.get_mut(job) {
                    ledger.terminal = Some(JournalOutcome::Finished);
                    ledger.terminal_records += 1;
                }
            }
            JournalRecord::Failed { job, permanent } => {
                if let Some(ledger) = jobs.get_mut(job) {
                    ledger.terminal = Some(JournalOutcome::Failed {
                        permanent: *permanent,
                    });
                    ledger.terminal_records += 1;
                }
            }
            JournalRecord::Cancelled { job } => {
                if let Some(ledger) = jobs.get_mut(job) {
                    ledger.terminal = Some(JournalOutcome::Cancelled);
                    ledger.terminal_records += 1;
                }
            }
        }
    }
    jobs
}

/// Cross-restart accounting derived at reconciliation time, surfaced by
/// `ServeSummary` (`recovered=`/`replayed=`/`discarded=`) and `/healthz`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Distinct jobs the journal remembers being admitted.
    pub journaled_jobs: u64,
    /// Prior-incarnation terminals, not re-run (exactly-once accounting).
    pub finished: u64,
    pub failed: u64,
    pub cancelled: u64,
    /// In-flight jobs re-queued to resume from a verified snapshot.
    pub recovered: u64,
    /// In-flight jobs re-queued to restart from zero.
    pub replayed: u64,
    /// Corrupt durable artifacts dropped (journal tail counts as one,
    /// plus unusable snapshots and unparseable workloads).
    pub discarded: u64,
    /// Torn-tail bytes the journal open cut back.
    pub truncated_bytes: u64,
}

impl RecoveryStats {
    /// Jobs accounted terminal before this incarnation started.
    pub fn terminal(&self) -> u64 {
        self.finished + self.failed + self.cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "morph-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn admitted(job: u64) -> JournalRecord {
        JournalRecord::Admitted {
            job,
            tenant: "acme".into(),
            priority: Priority::Normal,
            deadline_ms: 0,
            max_attempts: 2,
            workload: "mst 24 40 7".into(),
        }
    }

    #[test]
    fn records_roundtrip_through_the_frame() {
        let recs = vec![
            admitted(1),
            JournalRecord::Started { job: 1, device: 2, attempt: 1 },
            JournalRecord::Checkpointed { job: 1, version: 3, iteration: 9 },
            JournalRecord::Requeued { job: 1, reason: "evicted (device_loss)".into() },
            JournalRecord::Finished { job: 1 },
            JournalRecord::Failed { job: 2, permanent: true },
            JournalRecord::Cancelled { job: 3 },
        ];
        for rec in &recs {
            let f = frame(rec);
            let payload = &f[8..];
            assert_eq!(JournalRecord::decode(payload).as_ref(), Some(rec));
        }
    }

    #[test]
    fn open_append_reopen_replays_everything() {
        let dir = scratch("replay");
        let path = dir.join("journal.wal");
        {
            let (j, scan) = Journal::open(&path, None).unwrap();
            assert!(scan.records.is_empty());
            j.append(&admitted(1));
            j.append(&JournalRecord::Started { job: 1, device: 1, attempt: 1 });
            j.append(&JournalRecord::Finished { job: 1 });
            assert_eq!(j.appends(), 3);
            assert!(j.take_error().is_none());
        }
        let (_, scan) = Journal::open(&path, None).unwrap();
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.truncated_bytes, 0);
        let jobs = fold(&scan.records);
        assert_eq!(jobs[&1].terminal, Some(JournalOutcome::Finished));
        assert_eq!(jobs[&1].starts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_good_prefix() {
        let dir = scratch("torn");
        let path = dir.join("journal.wal");
        {
            let (j, _) = Journal::open(&path, None).unwrap();
            j.append(&admitted(1));
            j.append(&JournalRecord::Started { job: 1, device: 1, attempt: 1 });
        }
        // Corrupt: append half of another frame by hand.
        let good_len = std::fs::metadata(&path).unwrap().len();
        let tail = frame(&JournalRecord::Finished { job: 1 });
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&tail[..tail.len() / 2]).unwrap();
        }
        let (_, scan) = Journal::open(&path, None).unwrap();
        assert_eq!(scan.records.len(), 2, "good prefix survives");
        assert!(scan.truncated_bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len, "tail cut");
        // And the truncation is durable: a third open sees a clean file.
        let (_, scan2) = Journal::open(&path, None).unwrap();
        assert_eq!(scan2.truncated_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_mid_record_recovers_to_prefix_not_error() {
        let dir = scratch("midrecord");
        let path = dir.join("journal.wal");
        {
            let (j, _) = Journal::open(&path, None).unwrap();
            j.append(&admitted(1));
            j.append(&admitted(2));
            j.append(&JournalRecord::Finished { job: 1 });
        }
        // Flip a byte inside the *second* record's payload: scan stops
        // there, keeping record 1 only (everything after the damage is
        // unreachable — that is the contract; the WAL has no sync marks).
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = frame(&admitted(1)).len();
        bytes[4 + first_len + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (_, scan) = Journal::open(&path, None).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0], admitted(1));
        assert!(scan.truncated_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_poisons_and_reopens_clean() {
        let dir = scratch("faulted");
        let path = dir.join("journal.wal");
        {
            let plan = Arc::new(FaultPlan::new().with_torn_write(2));
            let (j, _) = Journal::open(&path, Some(plan)).unwrap();
            j.append(&admitted(1)); // 0: clean
            j.append(&admitted(2)); // 1: clean
            j.append(&JournalRecord::Finished { job: 1 }); // 2: torn
            j.append(&JournalRecord::Finished { job: 2 }); // dropped (poisoned)
            assert_eq!(j.write_faults(), 1);
            assert_eq!(j.appends(), 2);
        }
        let (_, scan) = Journal::open(&path, None).unwrap();
        assert_eq!(scan.records.len(), 2, "only the pre-fault prefix");
        assert!(scan.truncated_bytes > 0);
        let jobs = fold(&scan.records);
        assert!(jobs[&1].terminal.is_none(), "torn Finished = pending again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_denial_degrades_without_losing_the_append() {
        let dir = scratch("fsync");
        let path = dir.join("journal.wal");
        {
            let plan = Arc::new(FaultPlan::new().with_fsync_denial(0));
            let (j, _) = Journal::open(&path, Some(plan)).unwrap();
            j.append(&admitted(1));
            j.append(&JournalRecord::Finished { job: 1 }); // denied fsync
            assert_eq!(j.fsyncs_denied(), 1);
            assert_eq!(j.appends(), 2);
            assert!(j.take_error().is_none(), "denial is not an error");
        }
        let (_, scan) = Journal::open(&path, None).unwrap();
        assert_eq!(scan.records.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_rebuilds_the_spec() {
        let recs = vec![
            JournalRecord::Admitted {
                job: 4,
                tenant: "t0".into(),
                priority: Priority::High,
                deadline_ms: 250,
                max_attempts: 3,
                workload: "sp 30 120 3 24 11".into(),
            },
            JournalRecord::Started { job: 4, device: 1, attempt: 1 },
            JournalRecord::Checkpointed { job: 4, version: 2, iteration: 5 },
        ];
        let jobs = fold(&recs);
        let ledger = &jobs[&4];
        assert_eq!(ledger.checkpoint, Some((2, 5)));
        let spec = ledger.spec().unwrap();
        assert_eq!(spec.tenant, "t0");
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.deadline, Some(Duration::from_millis(250)));
        assert_eq!(spec.retry.max_attempts, 3);
        assert_eq!(spec.workload.encode(), "sp 30 120 3 24 11");
        // An unparseable workload is reported, not panicked over.
        let mut bad = ledger.clone();
        bad.workload = "quantum 12".into();
        assert!(bad.spec().is_none());
    }
}
