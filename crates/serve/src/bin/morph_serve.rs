//! `morph-serve` — replay a job file against a virtual-device pool.
//!
//! ```text
//! morph-serve gen <jobs> <seed> <out.jobs>
//! morph-serve run <file.jobs> [--devices N] [--sms M] [--queue C]
//!                             [--trace out.jsonl] [--metrics out.prom]
//!                             [--fault-seed S] [--chaos S]
//!                             [--checkpoint-every N]
//! ```
//!
//! `gen` writes a seeded mixed workload (all four pipelines, three
//! tenants) in the replay format. `run` submits every job to a pool and
//! prints the serving summary; with `--trace` the merged per-job event
//! stream is also written as JSON Lines (renderable by `trace-report`,
//! partitionable per job). `--metrics` flushes the pool's live registry —
//! per-job latency histograms plus the engine's hardware cost-model
//! series, labelled tenant/algo — as Prometheus-style exposition text.
//! `--fault-seed` arms a seeded `FaultPlan` on every fourth job,
//! exercising the requeue path under injected faults — the CI soak job
//! runs exactly this and greps the final `SOAK` line.
//!
//! `--chaos S` goes further: it layers the deterministic chaos schedule
//! ([`morph_serve::apply_chaos`]) over the replay — device losses mid
//! launch, hung kernels, seeded kernel faults — and arms the full
//! resilience stack: per-iteration checkpointing (so evicted jobs resume
//! on another slot), the hung-job watchdog, and the per-slot quarantine
//! breaker. `--checkpoint-every N` tunes the snapshot cadence
//! independently (0 disables; with `--chaos` the default is 1).
//!
//! The introspection flags turn on the live plane:
//!
//! * `--serve-http ADDR` binds the embedded HTTP server (`/metrics`,
//!   `/healthz`, `/jobs`) for the duration of the run; `ADDR:0` picks a
//!   free port and prints it.
//! * `--flamegraph out.folded` arms the continuous phase profiler and
//!   writes folded stacks (`algo;iteration-class;phase cycles`) at exit —
//!   ready for any flamegraph renderer, or `trace-report flamegraph`.
//! * `--flight out.jsonl` sets the flight recorder's dump path; the
//!   recorder itself is always on, ring-buffering recent events per slot,
//!   and dumps post-mortem context when a sanitizer trips, a job gives
//!   up, or an eviction storm hits. `--flight-drill` plants a synthetic
//!   sanitizer violation after the drain so CI can verify the
//!   trap-to-dump path end to end.
//! * `--slo-objective US` sets the per-job turnaround objective for the
//!   burn-rate monitors (default 2s).
//!
//! `check-exposition <file>` re-parses a scraped `/metrics` body with the
//! same parser the library uses — CI curls mid-run and validates here.

use morph_gpu_sim::FaultPlan;
use morph_serve::{
    apply_chaos, generate_mixed, parse_file, render_file, MorphServe, ServeConfig, ServeSummary,
    SloConfig, CHAOS_HANG_BUDGET,
};
use morph_trace::{
    parse_jsonl, FlightConfig, JsonlSink, PhaseProfiler, RingSink, TeeSink, TraceEvent,
    TraceReport, TraceSink, Tracer,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!("usage: morph-serve gen <jobs> <seed> <out.jobs>");
    eprintln!("       morph-serve run <file.jobs> [--devices N] [--sms M] [--queue C]");
    eprintln!("                       [--trace out.jsonl] [--metrics out.prom] [--fault-seed S]");
    eprintln!("                       [--chaos S] [--checkpoint-every N]");
    eprintln!("                       [--serve-http ADDR] [--flamegraph out.folded]");
    eprintln!("                       [--flight out.jsonl] [--flight-drill] [--slo-objective US]");
    eprintln!("       morph-serve check-exposition <metrics.prom>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => match (args.get(1), args.get(2), args.get(3)) {
            (Some(jobs), Some(seed), Some(out)) => gen(jobs, seed, out),
            _ => usage(),
        },
        Some("run") => match args.get(1) {
            Some(file) => run(file, &args[2..]),
            None => usage(),
        },
        Some("check-exposition") => match args.get(1) {
            Some(file) => check_exposition(file),
            None => usage(),
        },
        _ => usage(),
    }
}

/// Validate a scraped `/metrics` body with the library's own parser.
fn check_exposition(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("morph-serve: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match morph_metrics::parse_exposition(&text) {
        Ok(doc) => {
            eprintln!(
                "{path}: valid exposition ({} samples, {} families)",
                doc.samples.len(),
                doc.types.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: invalid exposition: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gen(jobs: &str, seed: &str, out: &str) -> ExitCode {
    let (Ok(jobs), Ok(seed)) = (jobs.parse::<usize>(), seed.parse::<u64>()) else {
        return usage();
    };
    let specs = generate_mixed(jobs, seed);
    let text = render_file(&specs, seed);
    if let Err(e) = std::fs::write(out, text) {
        eprintln!("morph-serve: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} jobs to {out}", specs.len());
    ExitCode::SUCCESS
}

/// Flag parsing: `--name value` pairs after the file argument.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for {name}")),
    }
}

/// [`flag`] with error reporting folded into a shared `bad` latch, so
/// every malformed flag is diagnosed in one pass before bailing.
fn flag_or<T: std::str::FromStr>(args: &[String], name: &str, bad: &mut bool) -> Option<T> {
    match flag::<T>(args, name) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("morph-serve: {e}");
            *bad = true;
            None
        }
    }
}

fn run(file: &str, rest: &[String]) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("morph-serve: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match parse_file(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("morph-serve: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut bad = false;
    let devices = flag_or::<usize>(rest, "--devices", &mut bad).unwrap_or(4);
    let sms = flag_or::<usize>(rest, "--sms", &mut bad).unwrap_or(2);
    let queue = flag_or::<usize>(rest, "--queue", &mut bad).unwrap_or(256);
    let trace_path = flag_or::<String>(rest, "--trace", &mut bad);
    let metrics_path = flag_or::<String>(rest, "--metrics", &mut bad);
    let fault_seed = flag_or::<u64>(rest, "--fault-seed", &mut bad);
    let chaos_seed = flag_or::<u64>(rest, "--chaos", &mut bad);
    let ckpt_every = flag_or::<u64>(rest, "--checkpoint-every", &mut bad);
    let http_addr = flag_or::<String>(rest, "--serve-http", &mut bad);
    let flamegraph_path = flag_or::<String>(rest, "--flamegraph", &mut bad);
    let flight_path = flag_or::<String>(rest, "--flight", &mut bad);
    let slo_objective = flag_or::<u64>(rest, "--slo-objective", &mut bad).unwrap_or(2_000_000);
    let flight_drill = rest.iter().any(|a| a == "--flight-drill");
    if bad {
        return usage();
    }

    // Always fold through a ring (the summary source); tee into a JSONL
    // file when asked.
    let ring = Arc::new(RingSink::new(1 << 18));
    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![Arc::clone(&ring) as _];
    let jsonl = match &trace_path {
        Some(path) => match JsonlSink::create(path) {
            Ok(s) => {
                let s = Arc::new(s);
                sinks.push(Arc::clone(&s) as _);
                Some(s)
            }
            Err(e) => {
                eprintln!("morph-serve: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let tracer = Tracer::new(Arc::new(TeeSink::new(sinks)) as _);

    // Chaos mode enables per-iteration checkpointing (unless overridden)
    // and the hung-job watchdog. The barrier watchdog stays off so chaos
    // stalls are caught by the *serving* layer — that is the path under
    // test.
    let checkpoint_every = ckpt_every.unwrap_or(u64::from(chaos_seed.is_some()));
    // The profiler is shared with the pool (every slot's engine feeds
    // it); kept here so the folded stacks can be written after shutdown.
    let profiler = flamegraph_path.as_ref().map(|_| Arc::new(PhaseProfiler::new()));
    let cfg = ServeConfig {
        devices,
        sms_per_device: sms,
        queue_capacity: queue,
        checkpoint_every,
        hang_budget: chaos_seed.is_some().then_some(CHAOS_HANG_BUDGET),
        http_addr: http_addr.clone(),
        flight: FlightConfig {
            dump_path: flight_path.clone().map(PathBuf::from),
            ..FlightConfig::default()
        },
        profiler: profiler.clone(),
        slo: Some(SloConfig {
            objective_us: slo_objective,
            ..SloConfig::default()
        }),
        ..ServeConfig::default()
    };
    eprintln!(
        "serving {} jobs on {} device(s) x {} SM(s), queue capacity {}",
        specs.len(),
        cfg.devices,
        cfg.sms_per_device,
        cfg.queue_capacity
    );
    let mut specs = specs;
    if let Some(cs) = chaos_seed {
        apply_chaos(&mut specs, cs);
        eprintln!(
            "chaos: seed {cs}, checkpoint every {checkpoint_every} iteration(s), hang budget {:?}",
            CHAOS_HANG_BUDGET
        );
    }
    let mut pool = MorphServe::start(cfg, tracer);
    if let Some(addr) = pool.http_addr() {
        eprintln!("introspection: http://{addr}/ (endpoints: /metrics /healthz /jobs)");
    }
    let mut rejected = 0usize;
    for (i, mut spec) in specs.into_iter().enumerate() {
        if let Some(fs) = fault_seed {
            // Every fourth job runs under a seeded fault plan, so the
            // retry/requeue machinery is continuously exercised.
            if i % 4 == 0 {
                spec = spec.with_fault_plan(Arc::new(FaultPlan::seeded(
                    fs.wrapping_add(i as u64),
                    6,
                    8,
                    64,
                )));
            }
        }
        if pool.submit(spec).is_err() {
            rejected += 1;
        }
    }
    pool.drain();
    if flight_drill {
        // Plant a synthetic sanitizer violation *after* the drain: the
        // flight recorder has a full complement of per-slot context, and
        // the dump must show the trap plus the events that preceded it.
        eprintln!("flight drill: planting a synthetic sanitizer violation");
        pool.flight().record_tagged(
            None,
            TraceEvent::Sanitizer {
                check: "drill.flight_recorder".into(),
                status: "violation".into(),
                index: 0,
                detail: "planted by --flight-drill".into(),
            },
        );
        // Auto-dump is first-trigger-wins, and under chaos a real
        // give-up may legitimately have claimed it — rewrite manually so
        // the drill's trap is in the dump deterministically.
        if let Err(e) = pool.flight().dump("flight drill: planted sanitizer violation") {
            eprintln!("morph-serve: flight drill dump failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Snapshot before shutdown so the registry reflects exactly the jobs
    // this run served; same for slot health — the breaker view feeds the
    // summary through the identical source /healthz serves.
    let metrics_snapshot = metrics_path.as_ref().map(|_| pool.metrics().snapshot());
    let slot_health = pool.slot_health();
    pool.shutdown();
    if rejected > 0 {
        eprintln!("{rejected} submission(s) rejected at admission");
    }

    let report = TraceReport::from_events(ring.events().iter());
    let summary = ServeSummary::from_report(&report).with_slot_health(&slot_health);
    print!("{}", report.render_jobs());
    print!("{}", summary.render());
    if let Some(sink) = jsonl {
        sink.flush();
        if let Some(err) = sink.io_error() {
            eprintln!("morph-serve: I/O error writing trace: {err}");
            return ExitCode::FAILURE;
        }
        // Self-check: the stream we just wrote must parse line-for-line.
        if let Some(path) = &trace_path {
            if let Ok(data) = std::fs::read_to_string(path) {
                let (events, bad) = parse_jsonl(&data);
                eprintln!("trace: {} events to {path} ({} unparseable)", events.len(), bad.len());
                if !bad.is_empty() {
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let (Some(path), Some(snap)) = (&metrics_path, &metrics_snapshot) {
        let text = morph_metrics::expose(snap);
        // Self-check before writing: exposition we cannot re-parse is a
        // bug, not a warning.
        if let Err(e) = morph_metrics::parse_exposition(&text) {
            eprintln!("morph-serve: invalid exposition generated: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("morph-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics: {} series to {path}", snap.series.len());
    }
    if let (Some(path), Some(p)) = (&flamegraph_path, &profiler) {
        let folded = p.to_folded();
        if folded.is_empty() {
            eprintln!("morph-serve: warning: profiler captured no samples");
        }
        if let Err(e) = std::fs::write(path, &folded) {
            eprintln!("morph-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "flamegraph: {} folded stack(s) to {path}",
            folded.lines().count()
        );
    }
    let dumps = pool.flight().dumps();
    if dumps > 0 {
        eprintln!("flight recorder: {dumps} dump(s) written");
    }
    if summary.lost > 0 || summary.duplicate_runs > 0 {
        eprintln!("morph-serve: integrity violation (lost or duplicated jobs)");
        // Last-resort post-mortem: dump whatever the recorder holds.
        let _ = pool.flight().dump("integrity violation: lost or duplicated jobs");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
