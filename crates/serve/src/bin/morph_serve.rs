//! `morph-serve` — replay a job file against a virtual-device pool.
//!
//! ```text
//! morph-serve gen <jobs> <seed> <out.jobs>
//! morph-serve run <file.jobs> [--devices N] [--sms M] [--queue C]
//!                             [--trace out.jsonl] [--metrics out.prom]
//!                             [--fault-seed S] [--chaos S]
//!                             [--checkpoint-every N]
//! ```
//!
//! `gen` writes a seeded mixed workload (all four pipelines, three
//! tenants) in the replay format. `run` submits every job to a pool and
//! prints the serving summary; with `--trace` the merged per-job event
//! stream is also written as JSON Lines (renderable by `trace-report`,
//! partitionable per job). `--metrics` flushes the pool's live registry —
//! per-job latency histograms plus the engine's hardware cost-model
//! series, labelled tenant/algo — as Prometheus-style exposition text.
//! `--fault-seed` arms a seeded `FaultPlan` on every fourth job,
//! exercising the requeue path under injected faults — the CI soak job
//! runs exactly this and greps the final `SOAK` line.
//!
//! `--chaos S` goes further: it layers the deterministic chaos schedule
//! ([`morph_serve::apply_chaos`]) over the replay — device losses mid
//! launch, hung kernels, seeded kernel faults — and arms the full
//! resilience stack: per-iteration checkpointing (so evicted jobs resume
//! on another slot), the hung-job watchdog, and the per-slot quarantine
//! breaker. `--checkpoint-every N` tunes the snapshot cadence
//! independently (0 disables; with `--chaos` the default is 1).
//!
//! The introspection flags turn on the live plane:
//!
//! * `--serve-http ADDR` binds the embedded HTTP server (`/metrics`,
//!   `/healthz`, `/jobs`, `/lens`) for the duration of the run; `ADDR:0`
//!   picks a free port and prints it.
//! * `--lens` arms the morph-lens attribution hub on every job:
//!   pipelines register their device structures, the engine buckets
//!   metered traffic per phase × structure, `/lens` serves the
//!   cumulative table as JSON, and the `morph_lens_*` counter families
//!   land in `/metrics` (and `--metrics` files), labelled
//!   phase/region/tenant/algo.
//! * `--flamegraph out.folded` arms the continuous phase profiler and
//!   writes folded stacks (`algo;iteration-class;phase cycles`) at exit —
//!   ready for any flamegraph renderer, or `trace-report flamegraph`.
//! * `--flight out.jsonl` sets the flight recorder's dump path; the
//!   recorder itself is always on, ring-buffering recent events per slot,
//!   and dumps post-mortem context when a sanitizer trips, a job gives
//!   up, or an eviction storm hits. `--flight-drill` plants a synthetic
//!   sanitizer violation after the drain so CI can verify the
//!   trap-to-dump path end to end.
//! * `--slo-objective US` sets the per-job turnaround objective for the
//!   burn-rate monitors (default 2s).
//!
//! `check-exposition <file>` re-parses a scraped `/metrics` body with the
//! same parser the library uses — CI curls mid-run and validates here.
//!
//! The durability flags make a run crash-consistent:
//!
//! * `--resume DIR` keeps the write-ahead job journal and the verified
//!   checkpoint store in `DIR`. A fresh directory just records; a
//!   directory left by a killed run is *reconciled* — journaled
//!   terminals are accounted without re-running, in-flight jobs resume
//!   from their last good snapshot or restart from zero, and the
//!   summary's `recovered=`/`replayed=`/`discarded=` counters say which.
//! * `--torn-write N` / `--short-write N` / `--fsync-deny N` /
//!   `--bit-flip N` arm the durability fault injectors on the journal
//!   and store (the Nth append/fsync/read misbehaves once).
//!
//! `crash-soak <dir>` is the end-to-end drill: it SIGKILLs a chaos run
//! mid-flight `--cycles` times — each incarnation resuming from `<dir>`
//! under injected torn writes and fsync denials — then lets a final
//! clean incarnation finish and folds the surviving journal into one
//! `CRASH-SOAK` integrity line (every admitted job exactly one terminal,
//! nothing lost, nothing run twice).

use morph_gpu_sim::FaultPlan;
use morph_serve::{
    apply_chaos, fold_journal, generate_mixed, parse_file, render_file, scan_journal, MorphServe,
    ServeConfig, ServeSummary, SloConfig, CHAOS_HANG_BUDGET,
};
use morph_trace::{
    parse_jsonl, FlightConfig, JsonlSink, PhaseProfiler, RingSink, TeeSink, TraceEvent,
    TraceReport, TraceSink, Tracer,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!("usage: morph-serve gen <jobs> <seed> <out.jobs>");
    eprintln!("       morph-serve run <file.jobs> [--devices N] [--sms M] [--queue C]");
    eprintln!("                       [--trace out.jsonl] [--metrics out.prom] [--fault-seed S]");
    eprintln!("                       [--chaos S] [--checkpoint-every N]");
    eprintln!("                       [--serve-http ADDR] [--flamegraph out.folded]");
    eprintln!("                       [--flight out.jsonl] [--flight-drill] [--slo-objective US]");
    eprintln!("                       [--resume DIR] [--torn-write N] [--short-write N]");
    eprintln!("                       [--fsync-deny N] [--bit-flip N] [--autotune] [--lens]");
    eprintln!("       morph-serve crash-soak <dir> [--jobs N] [--seed S] [--cycles N] [--devices N]");
    eprintln!("       morph-serve check-exposition <metrics.prom>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => match (args.get(1), args.get(2), args.get(3)) {
            (Some(jobs), Some(seed), Some(out)) => gen(jobs, seed, out),
            _ => usage(),
        },
        Some("run") => match args.get(1) {
            Some(file) => run(file, &args[2..]),
            None => usage(),
        },
        Some("crash-soak") => match args.get(1) {
            Some(dir) => crash_soak(dir, &args[2..]),
            None => usage(),
        },
        Some("check-exposition") => match args.get(1) {
            Some(file) => check_exposition(file),
            None => usage(),
        },
        _ => usage(),
    }
}

/// Validate a scraped `/metrics` body with the library's own parser.
fn check_exposition(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("morph-serve: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match morph_metrics::parse_exposition(&text) {
        Ok(doc) => {
            eprintln!(
                "{path}: valid exposition ({} samples, {} families)",
                doc.samples.len(),
                doc.types.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: invalid exposition: {e}");
            ExitCode::FAILURE
        }
    }
}

fn gen(jobs: &str, seed: &str, out: &str) -> ExitCode {
    let (Ok(jobs), Ok(seed)) = (jobs.parse::<usize>(), seed.parse::<u64>()) else {
        return usage();
    };
    let specs = generate_mixed(jobs, seed);
    let text = render_file(&specs, seed);
    if let Err(e) = std::fs::write(out, text) {
        eprintln!("morph-serve: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} jobs to {out}", specs.len());
    ExitCode::SUCCESS
}

/// Flag parsing: `--name value` pairs after the file argument.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for {name}")),
    }
}

/// [`flag`] with error reporting folded into a shared `bad` latch, so
/// every malformed flag is diagnosed in one pass before bailing.
fn flag_or<T: std::str::FromStr>(args: &[String], name: &str, bad: &mut bool) -> Option<T> {
    match flag::<T>(args, name) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("morph-serve: {e}");
            *bad = true;
            None
        }
    }
}

fn run(file: &str, rest: &[String]) -> ExitCode {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("morph-serve: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let specs = match parse_file(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("morph-serve: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut bad = false;
    let devices = flag_or::<usize>(rest, "--devices", &mut bad).unwrap_or(4);
    let sms = flag_or::<usize>(rest, "--sms", &mut bad).unwrap_or(2);
    let queue = flag_or::<usize>(rest, "--queue", &mut bad).unwrap_or(256);
    let trace_path = flag_or::<String>(rest, "--trace", &mut bad);
    let metrics_path = flag_or::<String>(rest, "--metrics", &mut bad);
    let fault_seed = flag_or::<u64>(rest, "--fault-seed", &mut bad);
    let chaos_seed = flag_or::<u64>(rest, "--chaos", &mut bad);
    let ckpt_every = flag_or::<u64>(rest, "--checkpoint-every", &mut bad);
    let http_addr = flag_or::<String>(rest, "--serve-http", &mut bad);
    let flamegraph_path = flag_or::<String>(rest, "--flamegraph", &mut bad);
    let flight_path = flag_or::<String>(rest, "--flight", &mut bad);
    let slo_objective = flag_or::<u64>(rest, "--slo-objective", &mut bad).unwrap_or(2_000_000);
    let flight_drill = rest.iter().any(|a| a == "--flight-drill");
    let autotune = rest.iter().any(|a| a == "--autotune");
    let lens = rest.iter().any(|a| a == "--lens");
    let resume_dir = flag_or::<String>(rest, "--resume", &mut bad);
    let torn_write = flag_or::<u64>(rest, "--torn-write", &mut bad);
    let short_write = flag_or::<u64>(rest, "--short-write", &mut bad);
    let fsync_deny = flag_or::<u64>(rest, "--fsync-deny", &mut bad);
    let bit_flip = flag_or::<u64>(rest, "--bit-flip", &mut bad);
    if bad {
        return usage();
    }

    // Durability fault injectors apply to the journal and checkpoint
    // store only — they are a separate plane from `--fault-seed`'s
    // kernel faults, so a torn journal write never masquerades as a
    // device failure.
    let durability_faults = if [torn_write, short_write, fsync_deny, bit_flip]
        .iter()
        .any(Option::is_some)
    {
        let mut plan = FaultPlan::new();
        if let Some(n) = torn_write {
            plan = plan.with_torn_write(n);
        }
        if let Some(n) = short_write {
            plan = plan.with_short_write(n);
        }
        if let Some(n) = fsync_deny {
            plan = plan.with_fsync_denial(n);
        }
        if let Some(n) = bit_flip {
            plan = plan.with_read_bit_flip(n);
        }
        Some(Arc::new(plan))
    } else {
        None
    };

    // Always fold through a ring (the summary source); tee into a JSONL
    // file when asked.
    let ring = Arc::new(RingSink::new(1 << 18));
    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![Arc::clone(&ring) as _];
    let jsonl = match &trace_path {
        Some(path) => match JsonlSink::create(path) {
            Ok(s) => {
                let s = Arc::new(s);
                sinks.push(Arc::clone(&s) as _);
                Some(s)
            }
            Err(e) => {
                eprintln!("morph-serve: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let tracer = Tracer::new(Arc::new(TeeSink::new(sinks)) as _);

    // Chaos mode enables per-iteration checkpointing (unless overridden)
    // and the hung-job watchdog. The barrier watchdog stays off so chaos
    // stalls are caught by the *serving* layer — that is the path under
    // test.
    let checkpoint_every = ckpt_every.unwrap_or(u64::from(chaos_seed.is_some()));
    // The profiler is shared with the pool (every slot's engine feeds
    // it); kept here so the folded stacks can be written after shutdown.
    let profiler = flamegraph_path.as_ref().map(|_| Arc::new(PhaseProfiler::new()));
    let cfg = ServeConfig {
        devices,
        sms_per_device: sms,
        queue_capacity: queue,
        checkpoint_every,
        hang_budget: chaos_seed.is_some().then_some(CHAOS_HANG_BUDGET),
        http_addr: http_addr.clone(),
        flight: FlightConfig {
            dump_path: flight_path.clone().map(PathBuf::from),
            ..FlightConfig::default()
        },
        profiler: profiler.clone(),
        slo: Some(SloConfig {
            objective_us: slo_objective,
            ..SloConfig::default()
        }),
        state_dir: resume_dir.clone().map(PathBuf::from),
        durability_faults,
        autotune,
        lens,
        ..ServeConfig::default()
    };
    eprintln!(
        "serving {} jobs on {} device(s) x {} SM(s), queue capacity {}",
        specs.len(),
        cfg.devices,
        cfg.sms_per_device,
        cfg.queue_capacity
    );
    if autotune {
        eprintln!("autotune: morph-tune controller attached to every job");
    }
    if lens {
        eprintln!("lens: morph-lens attribution hub attached to every job");
    }
    let mut specs = specs;
    if let Some(cs) = chaos_seed {
        apply_chaos(&mut specs, cs);
        eprintln!(
            "chaos: seed {cs}, checkpoint every {checkpoint_every} iteration(s), hang budget {:?}",
            CHAOS_HANG_BUDGET
        );
    }
    let mut pool = MorphServe::start(cfg, tracer);
    if let Some(addr) = pool.http_addr() {
        eprintln!("introspection: http://{addr}/ (endpoints: /metrics /healthz /jobs /lens)");
    }
    // On resume, the first `journaled_jobs` specs of the replay were
    // already admitted (and journaled) by a previous incarnation: the
    // reconciler has re-queued the unfinished ones and accounted the
    // finished ones, so re-submitting them here would double-run. The
    // enumerate index is kept across the skip so `--fault-seed`'s
    // every-fourth-job keying stays stable between incarnations.
    let already_journaled = if resume_dir.is_some() {
        let rec = pool.recovery();
        if rec.journaled_jobs > 0 {
            eprintln!(
                "resume: {} journaled job(s) — {} already terminal, {} resumed from snapshot, {} restarted, {} discarded ({} journal byte(s) truncated)",
                rec.journaled_jobs,
                rec.terminal(),
                rec.recovered,
                rec.replayed,
                rec.discarded,
                rec.truncated_bytes
            );
        }
        rec.journaled_jobs as usize
    } else {
        0
    };
    let mut rejected = 0usize;
    for (i, mut spec) in specs.into_iter().enumerate().skip(already_journaled) {
        if let Some(fs) = fault_seed {
            // Every fourth job runs under a seeded fault plan, so the
            // retry/requeue machinery is continuously exercised.
            if i % 4 == 0 {
                spec = spec.with_fault_plan(Arc::new(FaultPlan::seeded(
                    fs.wrapping_add(i as u64),
                    6,
                    8,
                    64,
                )));
            }
        }
        if pool.submit(spec).is_err() {
            rejected += 1;
        }
    }
    pool.drain();
    if flight_drill {
        // Plant a synthetic sanitizer violation *after* the drain: the
        // flight recorder has a full complement of per-slot context, and
        // the dump must show the trap plus the events that preceded it.
        eprintln!("flight drill: planting a synthetic sanitizer violation");
        pool.flight().record_tagged(
            None,
            TraceEvent::Sanitizer {
                check: "drill.flight_recorder".into(),
                status: "violation".into(),
                index: 0,
                detail: "planted by --flight-drill".into(),
            },
        );
        // Auto-dump is first-trigger-wins, and under chaos a real
        // give-up may legitimately have claimed it — rewrite manually so
        // the drill's trap is in the dump deterministically.
        if let Err(e) = pool.flight().dump("flight drill: planted sanitizer violation") {
            eprintln!("morph-serve: flight drill dump failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Snapshot before shutdown so the registry reflects exactly the jobs
    // this run served; same for slot health — the breaker view feeds the
    // summary through the identical source /healthz serves.
    let metrics_snapshot = metrics_path.as_ref().map(|_| pool.metrics().snapshot());
    let slot_health = pool.slot_health();
    pool.shutdown();
    if rejected > 0 {
        eprintln!("{rejected} submission(s) rejected at admission");
    }

    let report = TraceReport::from_events(ring.events().iter());
    let summary = ServeSummary::from_report(&report).with_slot_health(&slot_health);
    print!("{}", report.render_jobs());
    print!("{}", summary.render());
    if let Some(sink) = jsonl {
        sink.flush();
        if let Some(err) = sink.io_error() {
            eprintln!("morph-serve: I/O error writing trace: {err}");
            return ExitCode::FAILURE;
        }
        // Self-check: the stream we just wrote must parse line-for-line.
        if let Some(path) = &trace_path {
            if let Ok(data) = std::fs::read_to_string(path) {
                let (events, bad) = parse_jsonl(&data);
                eprintln!("trace: {} events to {path} ({} unparseable)", events.len(), bad.len());
                if !bad.is_empty() {
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let (Some(path), Some(snap)) = (&metrics_path, &metrics_snapshot) {
        let text = morph_metrics::expose(snap);
        // Self-check before writing: exposition we cannot re-parse is a
        // bug, not a warning.
        if let Err(e) = morph_metrics::parse_exposition(&text) {
            eprintln!("morph-serve: invalid exposition generated: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("morph-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("metrics: {} series to {path}", snap.series.len());
    }
    if let (Some(path), Some(p)) = (&flamegraph_path, &profiler) {
        let folded = p.to_folded();
        if folded.is_empty() {
            eprintln!("morph-serve: warning: profiler captured no samples");
        }
        if let Err(e) = std::fs::write(path, &folded) {
            eprintln!("morph-serve: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "flamegraph: {} folded stack(s) to {path}",
            folded.lines().count()
        );
    }
    let dumps = pool.flight().dumps();
    if dumps > 0 {
        eprintln!("flight recorder: {dumps} dump(s) written");
    }
    if summary.lost > 0 || summary.duplicate_runs > 0 {
        eprintln!("morph-serve: integrity violation (lost or duplicated jobs)");
        // Last-resort post-mortem: dump whatever the recorder holds.
        let _ = pool.flight().dump("integrity violation: lost or duplicated jobs");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The crash-recovery drill: SIGKILL a chaos run mid-flight `--cycles`
/// times, each incarnation resuming from the same state directory under
/// injected durability faults, then let a clean final incarnation finish
/// and audit the surviving journal for exactly-once accounting.
///
/// Each killed cycle is only allowed to die *after* the journal shows at
/// least one in-flight job with a checkpoint (observed with the
/// read-only [`scan_journal`] — the child keeps the write handle), so
/// every resume genuinely exercises the snapshot-restore path rather
/// than replaying an empty directory.
fn crash_soak(dir: &str, rest: &[String]) -> ExitCode {
    let mut bad = false;
    let jobs = flag_or::<usize>(rest, "--jobs", &mut bad).unwrap_or(64);
    let seed = flag_or::<u64>(rest, "--seed", &mut bad).unwrap_or(7);
    let cycles = flag_or::<u32>(rest, "--cycles", &mut bad).unwrap_or(3);
    let devices = flag_or::<usize>(rest, "--devices", &mut bad).unwrap_or(3);
    if bad {
        return usage();
    }
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("morph-serve: cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let jobs_file = dir.join("soak.jobs");
    let specs = generate_mixed(jobs, seed);
    if let Err(e) = std::fs::write(&jobs_file, render_file(&specs, seed)) {
        eprintln!("morph-serve: cannot write {}: {e}", jobs_file.display());
        return ExitCode::FAILURE;
    }
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("morph-serve: cannot locate own binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wal = dir.join("journal.wal");
    let spawn = |faulted: Option<u32>| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("run")
            .arg(&jobs_file)
            .arg("--resume")
            .arg(&dir)
            .arg("--devices")
            .arg(devices.to_string())
            .arg("--queue")
            .arg((jobs + 16).to_string())
            .arg("--chaos")
            .arg(seed.to_string());
        if let Some(cycle) = faulted {
            // Stagger the injection points so successive incarnations
            // tear the journal at different records; odd cycles also
            // flip a bit on the first checkpoint-store read, forcing
            // the `.prev` fallback during reconciliation. The torn
            // write lands past the admit burst (one append per job) so
            // checkpoints reach the journal before it poisons.
            cmd.arg("--torn-write")
                .arg((jobs as u64 + 6 + 17 * u64::from(cycle)).to_string())
                .arg("--fsync-deny")
                .arg((10 + u64::from(cycle)).to_string());
            if cycle % 2 == 1 {
                cmd.arg("--bit-flip").arg("0");
            }
            // Killed incarnations never reach their summary; silence
            // their stdout so the one SOAK line printed below is
            // unambiguously the final clean run's.
            cmd.stdout(std::process::Stdio::null());
        }
        cmd
    };
    let ckpt_records = |scan: &morph_serve::JournalScan| {
        scan.records
            .iter()
            .filter(|r| matches!(r, morph_serve::JournalRecord::Checkpointed { .. }))
            .count()
    };
    let mut kills = 0u32;
    for cycle in 0..cycles {
        // Baseline the journal before the incarnation starts: the kill
        // must wait for checkpoints *this* incarnation wrote, or the
        // leftovers of the previous cycle would arm it before the child
        // has even reconciled.
        let base_ckpts = scan_journal(&wal).map(|s| ckpt_records(&s)).unwrap_or(0);
        let mut child = match spawn(Some(cycle)).spawn() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("morph-serve: cannot spawn soak cycle {cycle}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let started = Instant::now();
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    // The incarnation finished (or died) on its own;
                    // later cycles still resume and re-account it.
                    eprintln!("crash-soak: cycle {cycle} exited before the kill ({status})");
                    break;
                }
                Ok(None) => {}
                Err(e) => {
                    eprintln!("morph-serve: wait failed in cycle {cycle}: {e}");
                    let _ = child.kill();
                    return ExitCode::FAILURE;
                }
            }
            let armed = scan_journal(&wal).is_ok_and(|scan| {
                ckpt_records(&scan) > base_ckpts
                    && fold_journal(&scan.records)
                        .values()
                        .any(|l| l.terminal.is_none() && l.checkpoint.is_some())
            });
            // Kill the moment the journal proves an in-flight job has a
            // snapshot: waiting longer risks the incarnation finishing
            // the whole workload, leaving the final resume nothing to
            // recover. The kill points still differ across cycles
            // because each resumes with more terminals behind it.
            if armed || started.elapsed() >= Duration::from_secs(30) {
                let _ = child.kill();
                let _ = child.wait();
                kills += 1;
                eprintln!(
                    "crash-soak: cycle {cycle} SIGKILLed after {:?} (journal shows in-flight checkpoints)",
                    started.elapsed()
                );
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    // Final clean incarnation: no injected faults. Its stdout is
    // captured, re-printed (so the SOAK summary line lands in this
    // process's output for CI to grep), and parsed — the drill demands
    // the final resume actually restored at least one snapshot.
    let out = match spawn(None).output() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("morph-serve: cannot spawn final soak cycle: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", String::from_utf8_lossy(&out.stdout));
    eprint!("{}", String::from_utf8_lossy(&out.stderr));
    if !out.status.success() {
        eprintln!("morph-serve: final resume cycle failed ({})", out.status);
        return ExitCode::FAILURE;
    }
    let recovered = String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| l.starts_with("SOAK "))
        .flat_map(str::split_whitespace)
        .find_map(|tok| tok.strip_prefix("recovered=")?.parse::<u64>().ok())
        .unwrap_or(0);
    // Cross-incarnation audit straight from the surviving journal:
    // every admitted job must have reached exactly one terminal record
    // across all incarnations — zero lost, zero double-accounted.
    let scan = match scan_journal(&wal) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("morph-serve: cannot scan {}: {e}", wal.display());
            return ExitCode::FAILURE;
        }
    };
    let ledgers = fold_journal(&scan.records);
    let lost = ledgers.values().filter(|l| l.terminal.is_none()).count();
    let dup = ledgers.values().filter(|l| l.terminal_records > 1).count();
    println!(
        "CRASH-SOAK cycles={cycles} kills={kills} recovered={recovered} journaled={} lost={lost} dup={dup} truncated_bytes={}",
        ledgers.len(),
        scan.truncated_bytes
    );
    if lost > 0 || dup > 0 || kills == 0 || recovered == 0 {
        eprintln!(
            "morph-serve: crash-soak integrity violation (lost={lost} dup={dup} kills={kills} recovered={recovered})"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
