//! End-to-end tests for the live introspection plane: the embedded HTTP
//! endpoints, the always-on flight recorder, the SLO burn-rate monitors,
//! and the single-source slot-health guarantee (live `/healthz` and the
//! end-of-run `ServeSummary` folding the same circuit-breaker view).

use morph_serve::{
    apply_chaos, generate_mixed, JobSpec, MorphServe, ServeConfig, ServeSummary, SloConfig,
    Workload, CHAOS_HANG_BUDGET,
};
use morph_trace::{JobEventKind, RingSink, TraceEvent, TraceSink, Tracer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// One `GET` against the pool's embedded server; returns (status line,
/// body).
fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("introspection server accepts");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: morph\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let (head, body) = buf
        .split_once("\r\n\r\n")
        .expect("response has a header block");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

fn small_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::new(
            "acme",
            Workload::Mst {
                nodes: 60,
                edges: 180,
                seed: 1,
            },
        ),
        JobSpec::new(
            "blue",
            Workload::Dmr {
                triangles: 80,
                seed: 2,
            },
        ),
        JobSpec::new(
            "acme",
            Workload::Mst {
                nodes: 50,
                edges: 140,
                seed: 3,
            },
        ),
    ]
}

#[test]
fn http_endpoints_serve_metrics_health_and_jobs() {
    let ring = Arc::new(RingSink::new(1 << 14));
    let tracer = Tracer::new(Arc::clone(&ring) as _);
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 2,
            http_addr: Some("127.0.0.1:0".into()),
            slo: Some(SloConfig::default()),
            ..ServeConfig::default()
        },
        tracer,
    );
    let addr = pool.http_addr().expect("listener bound in start()");

    let ids: Vec<_> = small_jobs()
        .into_iter()
        .map(|s| pool.submit(s).unwrap())
        .collect();

    // Mid-run scrape: the exposition must parse with the library's own
    // parser even while workers are mutating the registry.
    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"), "mid-run /metrics: {status}");
    morph_metrics::parse_exposition(&body).expect("mid-run exposition parses");

    pool.drain();

    // Post-drain scrape: the queue gauge exists and reads empty, and the
    // SLO gauge is live per tenant.
    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"));
    let doc = morph_metrics::parse_exposition(&body).expect("exposition parses");
    let depth = doc
        .samples
        .iter()
        .find(|s| s.name == "morph_queue_depth")
        .expect("queue-depth gauge is registered");
    assert_eq!(depth.value, 0.0, "queue drained");
    assert!(
        doc.samples.iter().any(|s| s.name == "morph_slo_burn_rate"),
        "burn-rate gauge exported after terminal jobs"
    );

    // /jobs reflects every submitted job, terminal with its timing.
    let (status, body) = get(addr, "/jobs");
    assert!(status.contains("200"));
    for id in &ids {
        assert!(
            body.contains(&format!("\"job\":{id}")),
            "/jobs missing job {id}: {body}"
        );
    }
    assert!(body.contains("\"state\":\"finished\""));
    assert!(body.contains("\"tenant\":\"acme\""));
    assert!(body.contains("\"workload\":\"mst"));
    assert!(!body.contains("\"started_us\":null"), "all jobs ran");

    // /healthz: all slots healthy, nothing firing → 200, and the slot
    // states agree with the pool's own circuit-breaker accessor.
    let (status, body) = get(addr, "/healthz");
    assert!(status.contains("200"), "healthy pool: {status} {body}");
    assert!(body.contains("\"status\":\"ok\""));
    for slot in pool.slot_health() {
        assert!(
            body.contains(&format!(
                "{{\"device\":{},\"state\":\"{}\"",
                slot.device, slot.state
            )),
            "/healthz must mirror slot_health(): {body}"
        );
    }

    // Index and unknown paths.
    let (status, body) = get(addr, "/");
    assert!(status.contains("200"));
    assert!(body.contains("/metrics"));
    let (status, _) = get(addr, "/nope");
    assert!(status.contains("404"));

    // The always-on flight recorder retained the run's events even
    // though nothing tripped.
    assert!(!pool.flight().is_empty());
    assert_eq!(pool.flight().dumps(), 0);

    pool.shutdown();
}

#[test]
fn lens_endpoint_serves_attribution_and_metrics_carry_lens_families() {
    let ring = Arc::new(RingSink::new(1 << 14));
    let tracer = Tracer::new(Arc::clone(&ring) as _);
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 2,
            http_addr: Some("127.0.0.1:0".into()),
            lens: true,
            ..ServeConfig::default()
        },
        tracer,
    );
    let addr = pool.http_addr().unwrap();
    for spec in small_jobs() {
        pool.submit(spec).unwrap();
    }
    pool.drain();

    // /lens serves the cumulative snapshot: registered structures from
    // both pipelines, traffic rows, and a near-zero unattributed residue.
    let (status, body) = get(addr, "/lens");
    assert!(status.contains("200"), "/lens: {status}");
    assert!(body.contains("\"regions\":["));
    assert!(
        body.contains("mst.components") && body.contains("dmr.tri_verts"),
        "/lens must list both pipelines' structures: {body}"
    );
    assert!(body.contains("\"rows\":["));
    let frac = body
        .split("\"unattributed_fraction\":")
        .nth(1)
        .and_then(|t| t.trim_end_matches('}').parse::<f64>().ok())
        .expect("unattributed_fraction present");
    assert!(frac < 0.01, "unattributed fraction {frac} >= 1%: {body}");

    // The same snapshot is reachable programmatically.
    let snap = pool.lens().snapshot();
    assert!(!snap.rows.is_empty());

    // /metrics carries the labelled morph_lens_* families and still
    // parses with the library's own exposition parser.
    let (status, body) = get(addr, "/metrics");
    assert!(status.contains("200"));
    let doc = morph_metrics::parse_exposition(&body).expect("exposition parses");
    let lens_access = doc
        .samples
        .iter()
        .filter(|s| s.name == "morph_lens_gmem_accesses_total")
        .collect::<Vec<_>>();
    assert!(
        !lens_access.is_empty(),
        "morph_lens_gmem_accesses_total exported: {body}"
    );
    assert!(
        lens_access
            .iter()
            .any(|s| s.labels.iter().any(|(k, v)| k == "region" && v != "unattributed")),
        "lens samples carry region labels"
    );

    pool.shutdown();

    // Without ServeConfig::lens the endpoint 404s instead of serving an
    // empty table.
    let ring = Arc::new(RingSink::new(1 << 14));
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 1,
            http_addr: Some("127.0.0.1:0".into()),
            ..ServeConfig::default()
        },
        Tracer::new(Arc::clone(&ring) as _),
    );
    let addr = pool.http_addr().unwrap();
    let (status, _) = get(addr, "/lens");
    assert!(status.contains("404"), "lens disabled ⇒ 404: {status}");
    pool.shutdown();
}

#[test]
fn slo_burn_alert_fires_and_degrades_healthz() {
    let ring = Arc::new(RingSink::new(1 << 14));
    let tracer = Tracer::new(Arc::clone(&ring) as _);
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 2,
            http_addr: Some("127.0.0.1:0".into()),
            // A 1us objective every job misses: burn = 1/budget = 20x in
            // both windows, over the 10x threshold from the first sample.
            slo: Some(SloConfig {
                objective_us: 1,
                ..SloConfig::default()
            }),
            ..ServeConfig::default()
        },
        tracer,
    );
    let addr = pool.http_addr().unwrap();
    for spec in small_jobs() {
        pool.submit(spec).unwrap();
    }
    pool.drain();

    // The rising edge emitted a paging alert into the shared stream…
    let alerts: Vec<_> = ring
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Alert { monitor, .. } if monitor == "slo_burn_rate"))
        .cloned()
        .collect();
    assert!(!alerts.is_empty(), "expected a burn-rate alert");
    match &alerts[0] {
        TraceEvent::Alert {
            severity,
            value,
            threshold,
            detail,
            ..
        } => {
            assert_eq!(severity, "page");
            assert!(value >= threshold);
            assert!(detail.contains("objective"));
        }
        other => panic!("not an alert: {other:?}"),
    }

    // …and /healthz reports the degradation while the alert is firing.
    let (status, body) = get(addr, "/healthz");
    assert!(status.contains("503"), "firing burn ⇒ 503: {status} {body}");
    assert!(body.contains("\"status\":\"degraded\""));
    assert!(body.contains("\"firing\":true"));
    assert!(body.contains("slo_burn_rate") || body.contains("objective"));
    pool.shutdown();
}

#[test]
fn planted_violation_dumps_flight_context() {
    let dir = std::env::temp_dir().join(format!("morph-introspect-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump_path = dir.join("flight.jsonl");
    let ring = Arc::new(RingSink::new(1 << 14));
    let tracer = Tracer::new(Arc::clone(&ring) as _);
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 2,
            flight: morph_trace::FlightConfig {
                dump_path: Some(dump_path.clone()),
                ..Default::default()
            },
            ..ServeConfig::default()
        },
        tracer,
    );
    for spec in small_jobs() {
        pool.submit(spec).unwrap();
    }
    pool.drain();
    assert_eq!(pool.flight().dumps(), 0, "clean run, nothing tripped");

    // A sanitizer trap arriving through the shared tee triggers the
    // post-mortem dump, which must contain the run's preceding events.
    pool.flight().record_tagged(
        None,
        TraceEvent::Sanitizer {
            check: "test.planted".into(),
            status: "violation".into(),
            index: 0,
            detail: "planted".into(),
        },
    );
    assert_eq!(pool.flight().dumps(), 1);
    let text = std::fs::read_to_string(&dump_path).unwrap();
    let (events, bad) = morph_trace::parse_jsonl(&text);
    assert!(bad.is_empty(), "dump parses: {bad:?}");
    assert!(
        events.iter().any(|e| e.kind() == "job"),
        "dump holds the preceding job lifecycle"
    );
    assert!(text.contains("test.planted"));
    assert!(text.contains("flight_recorder"), "closing alert present");
    pool.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: `ServeSummary`'s checkpoint-overhead and evicted/resumed
/// accounting under the deterministic chaos schedule must equal a hand
/// fold of the raw stream — and the `SOAK` line must carry exactly those
/// numbers.
#[test]
fn chaos_accounting_matches_a_hand_fold_of_the_stream() {
    let mut specs = generate_mixed(32, 0x0B5);
    apply_chaos(&mut specs, 0x0B5);
    let ring = Arc::new(RingSink::new(1 << 18));
    let tracer = Tracer::new(Arc::clone(&ring) as _);
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 4,
            sms_per_device: 2,
            checkpoint_every: 1,
            hang_budget: Some(CHAOS_HANG_BUDGET),
            ..ServeConfig::default()
        },
        tracer,
    );
    for spec in specs {
        pool.submit(spec).unwrap();
    }
    pool.drain();
    let slots = pool.slot_health();
    pool.shutdown();

    let events = ring.events();
    let report = morph_trace::TraceReport::from_events(events.iter());
    let summary = ServeSummary::from_report(&report).with_slot_health(&slots);

    // Hand fold, straight off the event stream.
    let mut resumed = 0u64;
    let mut evicted = 0u64;
    let mut checkpoints = 0u64;
    let mut checkpoint_bytes = 0u64;
    for e in events.iter() {
        match e {
            TraceEvent::Job { kind, .. } if *kind == JobEventKind::Resumed => resumed += 1,
            TraceEvent::Eviction { .. } => evicted += 1,
            TraceEvent::Checkpoint { bytes, .. } => {
                checkpoints += 1;
                checkpoint_bytes += bytes;
            }
            _ => {}
        }
    }
    // The chaos schedule guarantees device losses, so the resilience
    // machinery genuinely ran.
    assert!(evicted > 0, "chaos must evict: {}", summary.render());
    assert!(resumed > 0, "evicted jobs resume from checkpoints");
    assert!(checkpoints > 0 && checkpoint_bytes > 0);

    assert_eq!(summary.resumed, resumed);
    assert_eq!(summary.evicted, evicted);
    assert_eq!(summary.checkpoints, checkpoints);
    assert_eq!(summary.checkpoint_bytes, checkpoint_bytes);
    assert_eq!(summary.lost, 0);
    assert_eq!(summary.duplicate_runs, 0);

    // The machine-greppable line carries exactly the hand-computed
    // numbers (quarantined comes from the live breaker snapshot).
    let quarantined = slots.iter().filter(|s| s.state == "quarantined").count();
    let rendered = summary.render();
    assert!(
        rendered.contains(&format!(
            "SOAK lost=0 dup=0 sanitizer_violations={} resumed={resumed} evicted={evicted} quarantined={quarantined}",
            summary.sanitizer_violations
        )),
        "SOAK line must carry the hand fold: {rendered}"
    );
    assert!(rendered.contains(&format!("{checkpoints} checkpoints ({checkpoint_bytes} bytes)")));
}
