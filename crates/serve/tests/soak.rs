//! The acceptance-criteria soak: ≥64 mixed jobs across ≥4 virtual
//! devices, with injected faults and mid-run cancellations, and the
//! end-state integrity checks the issue demands — no job lost,
//! duplicated, or silently dropped; cancelled and fault-injected jobs
//! release their device slots; deadline misses and per-tenant fairness
//! reported from trace events alone.

use morph_gpu_sim::FaultPlan;
use morph_serve::{
    generate_mixed, JobStatus, MorphServe, ServeConfig, ServeSummary,
};
use morph_trace::{JobEventKind, RingSink, TraceReport, Tracer};
use std::sync::Arc;

#[test]
fn mixed_soak_with_faults_and_cancellations() {
    const JOBS: usize = 64;
    const DEVICES: usize = 4;

    let ring = Arc::new(RingSink::new(1 << 18));
    let tracer = Tracer::new(Arc::clone(&ring) as _);
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: DEVICES,
            sms_per_device: 2,
            queue_capacity: 256,
            ..ServeConfig::default()
        },
        tracer,
    );

    let specs = generate_mixed(JOBS, 0xBEEF);
    let mut ids = Vec::with_capacity(JOBS);
    let mut doomed = Vec::new();
    for (i, mut spec) in specs.into_iter().enumerate() {
        if i % 16 == 2 {
            // A "doom" plan: panic every launch, outlasting the driver's
            // in-loop retry budget on both pool-level attempts — forces
            // the requeue path and then a clean permanent failure, while
            // the slot must come back each time.
            let mut plan = FaultPlan::new();
            for launch in 0..24 {
                plan = plan.with_kernel_panic(launch, 0, 0, 0);
            }
            spec = spec.with_fault_plan(Arc::new(plan));
            spec = spec.with_retry(2);
            // Deadline shedding must not race the deterministic
            // requeue-then-fail lifecycle asserted below.
            spec.deadline = None;
            doomed.push(i);
        } else if i % 4 == 0 {
            // Every other fourth job runs under a seeded fault plan:
            // kernel panics, barrier stalls and allocation denials land
            // mid-flight and are absorbed by the recovering driver.
            spec = spec.with_fault_plan(Arc::new(FaultPlan::seeded(
                0xF00D + i as u64,
                6,
                8,
                64,
            )));
        }
        ids.push(pool.submit(spec).expect("queue capacity covers the soak"));
    }
    // Cancel a scattering of jobs while the pool is busy: some will be
    // queued, some in flight, some already terminal.
    for id in ids.iter().filter(|id| *id % 9 == 0) {
        pool.cancel(*id);
    }
    pool.drain();

    // Every submitted job is terminal in the pool's own accounting.
    for id in &ids {
        let status = pool.wait(*id).expect("id was admitted");
        assert!(status.is_terminal(), "job {id} not terminal: {status:?}");
    }
    // Fairness signal exists for all three generated tenants.
    let usage = pool.tenant_run_us();
    assert_eq!(usage.len(), 3, "expected 3 tenants, got {usage:?}");
    assert!(usage.values().all(|&us| us > 0));
    pool.shutdown();

    // Now re-derive everything from the trace stream alone.
    let report = TraceReport::from_events(ring.events().iter());
    let summary = ServeSummary::from_report(&report);
    assert_eq!(summary.submitted, JOBS as u64);
    assert_eq!(summary.lost, 0, "lost jobs: {}", summary.render());
    assert_eq!(summary.duplicate_runs, 0, "dup runs: {}", summary.render());
    assert_eq!(
        summary.finished + summary.failed + summary.cancelled,
        JOBS as u64,
        "every admitted job must reach exactly one terminal state"
    );
    // The doom plans deterministically outlast the in-driver retry
    // budget twice: every doomed job requeued once and then failed
    // cleanly, releasing its slot both times.
    assert!(
        summary.requeues >= doomed.len() as u64,
        "doomed jobs must requeue: {}",
        summary.render()
    );
    assert!(
        summary.failed >= doomed.len() as u64,
        "doomed jobs must fail after the retry budget: {}",
        summary.render()
    );
    for i in &doomed {
        let row = &report.jobs[&ids[*i]];
        assert_eq!(
            row.outcome,
            Some(JobEventKind::Failed),
            "doomed job {} ended as {:?}",
            ids[*i],
            row.outcome
        );
        assert_eq!(row.requeues, 1);
        assert_eq!(row.starts, 2);
    }
    // The seeded (absorbable) faults left their mark too: driver-level
    // Recovery events tagged with the owning job's id.
    let tagged_recoveries = ring
        .tagged_events()
        .iter()
        .filter(|(tag, ev)| tag.is_some() && ev.kind() == "recovery")
        .count();
    assert!(
        tagged_recoveries > 0,
        "expected job-attributed recovery events from injected faults"
    );
    // Trace-side per-tenant fairness matches the pool's accounting.
    let traced: Vec<&str> = summary.tenants.iter().map(|(t, ..)| t.as_str()).collect();
    assert_eq!(traced, ["acme", "blue", "cyan"]);

    // Per-job consistency: device attribution within the pool's range,
    // starts bounded by the retry budget.
    for id in &ids {
        let row = &report.jobs[id];
        // One start per requeue+1 — except cancelled jobs (which may die
        // queued) and expired jobs shed before their first start.
        assert!(
            row.starts == row.requeues + 1
                || row.outcome == Some(JobEventKind::Cancelled)
                || (row.starts == 0 && row.outcome == Some(JobEventKind::Failed)),
            "job rows must balance starts and requeues: {row:?}"
        );
        if let Some(dev) = row.device {
            assert!((1..=DEVICES as u64).contains(&dev));
        }
    }
    // Wait/turnaround derivations exist for everything that ran.
    for row in report.jobs.values() {
        if row.starts > 0 {
            assert!(row.wait_us().is_some());
            assert!(row.turnaround_us().is_some());
        }
    }
    // The renderers don't panic and carry the headline numbers.
    let rendered = summary.render();
    assert!(rendered.contains("SOAK lost=0 dup=0"));
    assert!(!report.render_jobs().is_empty());
}

/// Cancelled-while-running jobs must free their slot for later work —
/// the regression the issue calls out explicitly, checked end-to-end
/// with a fault plan that stalls the victim long enough to guarantee
/// the cancel lands mid-flight.
#[test]
fn cancelled_inflight_job_releases_its_slot() {
    let ring = Arc::new(RingSink::new(1 << 14));
    let tracer = Tracer::new(Arc::clone(&ring) as _);
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 1,
            ..ServeConfig::default()
        },
        tracer,
    );
    // A big refinement keeps the single device busy.
    let victim = pool
        .submit(morph_serve::JobSpec::new(
            "v",
            morph_serve::Workload::Dmr {
                triangles: 1_500,
                seed: 3,
            },
        ))
        .unwrap();
    // Wait until it is actually running, then cancel mid-flight.
    loop {
        match pool.status(victim).unwrap() {
            JobStatus::Running { .. } => break,
            s if s.is_terminal() => break,
            _ => std::thread::yield_now(),
        }
    }
    pool.cancel(victim);
    let after = pool
        .submit(morph_serve::JobSpec::new(
            "w",
            morph_serve::Workload::Mst {
                nodes: 50,
                edges: 150,
                seed: 4,
            },
        ))
        .unwrap();
    // The follow-up job completes on the freed slot.
    assert!(matches!(
        pool.wait(after).unwrap(),
        JobStatus::Finished { .. }
    ));
    let vs = pool.wait(victim).unwrap();
    assert!(
        matches!(vs, JobStatus::Cancelled | JobStatus::Finished { .. }),
        "victim ended as {vs:?}"
    );
    pool.shutdown();
}
