//! Seeded property tests over the serving layer's invariants, driven
//! through the real pool (threads, devices, trace stream) with tiny
//! workloads so each case completes in milliseconds.
//!
//! The three satellite properties:
//! 1. no admitted job is lost or run twice (starts == requeues + 1),
//! 2. FIFO within a priority class for a single tenant,
//! 3. cancelling an in-flight job frees its device slot (later jobs
//!    still get served by the same worker).

use morph_serve::{JobSpec, MorphServe, Priority, ServeConfig, ServeSummary, Workload};
use morph_trace::{JobEventKind, RingSink, TraceReport, Tracer};
use proptest::prelude::*;
use std::sync::Arc;

fn tiny_workload(kind: u8, seed: u64) -> Workload {
    match kind % 4 {
        0 => Workload::Dmr {
            triangles: 30,
            seed,
        },
        1 => Workload::Sp {
            vars: 15,
            clauses: 40,
            k: 3,
            max_sweeps: 15,
            seed,
        },
        2 => Workload::Pta {
            vars: 12,
            constraints: 30,
            seed,
        },
        _ => Workload::Mst {
            nodes: 30,
            edges: 90,
            seed,
        },
    }
}

fn priority(p: u8) -> Priority {
    match p % 3 {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every admitted job reaches exactly one terminal state, and no job
    /// starts more often than its requeues allow — across random mixes
    /// of pipelines, priorities and device counts.
    #[test]
    fn no_admitted_job_is_lost_or_run_twice(
        jobs in prop::collection::vec((any::<u8>(), any::<u8>()), 1..24),
        devices in 1usize..5,
    ) {
        let ring = Arc::new(RingSink::new(1 << 16));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig { devices, queue_capacity: 64, ..ServeConfig::default() },
            tracer,
        );
        let mut ids = Vec::new();
        for (i, (kind, prio)) in jobs.iter().enumerate() {
            let spec = JobSpec::new(
                ["a", "b"][i % 2],
                tiny_workload(*kind, i as u64),
            )
            .with_priority(priority(*prio));
            ids.push(pool.submit(spec).unwrap());
        }
        pool.drain();
        pool.shutdown();

        let report = TraceReport::from_events(ring.events().iter());
        let summary = ServeSummary::from_report(&report);
        prop_assert_eq!(summary.submitted, ids.len() as u64);
        prop_assert_eq!(summary.lost, 0);
        prop_assert_eq!(summary.duplicate_runs, 0);
        for id in ids {
            let row = &report.jobs[&id];
            prop_assert!(row.outcome.is_some(), "job {} has no terminal event", id);
            prop_assert_eq!(row.starts, row.requeues + 1);
        }
    }

    /// With one device, one tenant and one priority class, jobs start in
    /// submission order — the seq tiebreak is a strict FIFO.
    #[test]
    fn fifo_within_a_priority_class(
        kinds in prop::collection::vec(any::<u8>(), 2..10),
    ) {
        let ring = Arc::new(RingSink::new(1 << 16));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig { devices: 1, queue_capacity: 64, ..ServeConfig::default() },
            tracer,
        );
        let mut ids = Vec::new();
        for (i, kind) in kinds.iter().enumerate() {
            ids.push(
                pool.submit(JobSpec::new("solo", tiny_workload(*kind, i as u64)))
                    .unwrap(),
            );
        }
        pool.drain();
        pool.shutdown();

        let report = TraceReport::from_events(ring.events().iter());
        let mut starts: Vec<(u64, u64)> = ids
            .iter()
            .map(|id| (report.jobs[id].started_us.expect("every job must start"), *id))
            .collect();
        starts.sort();
        let started_order: Vec<u64> = starts.into_iter().map(|(_, id)| id).collect();
        // Submission ids are monotone, so FIFO means starts in id order.
        // Caveat: the worker may pick the first job before later ones are
        // queued, but picks among *queued* jobs always favour lower seq,
        // and with a single tenant/priority no other key differs.
        prop_assert_eq!(&started_order, &ids);
    }

    /// Cancelling a prefix of the queue (some jobs mid-flight, some
    /// queued) never wedges a device: all remaining jobs still finish.
    #[test]
    fn cancellation_frees_the_device_slot(
        cancel_count in 1usize..4,
        tail in 2usize..6,
    ) {
        let ring = Arc::new(RingSink::new(1 << 16));
        let tracer = Tracer::new(Arc::clone(&ring) as _);
        let mut pool = MorphServe::start(
            ServeConfig { devices: 1, queue_capacity: 64, ..ServeConfig::default() },
            tracer,
        );
        // Cancel victims first: larger meshes so some are in flight when
        // the cancellations land.
        let victims: Vec<u64> = (0..cancel_count)
            .map(|i| {
                pool.submit(JobSpec::new(
                    "victim",
                    Workload::Dmr { triangles: 300, seed: i as u64 },
                ))
                .unwrap()
            })
            .collect();
        let survivors: Vec<u64> = (0..tail)
            .map(|i| {
                pool.submit(JobSpec::new(
                    "rest",
                    tiny_workload(i as u8, 100 + i as u64),
                ))
                .unwrap()
            })
            .collect();
        for id in &victims {
            pool.cancel(*id);
        }
        pool.drain();
        pool.shutdown();

        let report = TraceReport::from_events(ring.events().iter());
        // Every survivor must have been served after the cancellations —
        // the device slot came back.
        for id in survivors {
            prop_assert_eq!(
                report.jobs[&id].outcome,
                Some(JobEventKind::Finished),
                "survivor {} did not finish", id
            );
        }
        // Victims are either cancelled (token seen in time) or finished
        // (already past the last host boundary) — never lost.
        for id in victims {
            let out = report.jobs[&id].outcome;
            prop_assert!(
                matches!(out, Some(JobEventKind::Cancelled | JobEventKind::Finished)),
                "victim {} ended as {:?}", id, out
            );
        }
        let summary = ServeSummary::from_report(&report);
        prop_assert_eq!(summary.lost, 0);
        prop_assert_eq!(summary.duplicate_runs, 0);
    }
}
