//! End-to-end resilience: device failure domains, checkpoint/resume and
//! the hung-job watchdog, exercised through the real pool.
//!
//! The deterministic single-mechanism tests live next to the pool
//! (`pool::tests`); this suite covers the composed behaviours the issue
//! demands:
//!
//! * a chaos soak (device losses + hung kernels + seeded kernel faults)
//!   stays integrity-clean — nothing lost, nothing run twice — while at
//!   least one job demonstrably resumes from a checkpoint,
//! * a property test over seeded device-loss schedules: every admitted
//!   job terminal, `lost == dup == 0`, and resumed jobs still produce
//!   valid results,
//! * the new metrics series round-trip through the exposition format.

use morph_gpu_sim::FaultPlan;
use morph_serve::{
    generate_chaos, JobSpec, JobStatus, MorphServe, ServeConfig, ServeSummary, Workload,
    CHAOS_HANG_BUDGET, CHAOS_STALL,
};
use morph_trace::{JobEventKind, RingSink, TraceEvent, TraceReport, Tracer};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn chaos_pool(devices: usize, ring: &Arc<RingSink>) -> MorphServe {
    MorphServe::start(
        ServeConfig {
            devices,
            sms_per_device: 2,
            queue_capacity: 256,
            checkpoint_every: 1,
            hang_budget: Some(CHAOS_HANG_BUDGET),
            ..ServeConfig::default()
        },
        Tracer::new(Arc::clone(ring) as _),
    )
}

#[test]
fn chaos_soak_stays_clean_and_resumes_jobs() {
    const JOBS: usize = 32;
    let ring = Arc::new(RingSink::new(1 << 18));
    let mut pool = chaos_pool(4, &ring);

    let mut ids = Vec::new();
    for spec in generate_chaos(JOBS, 0xC4A05) {
        ids.push(pool.submit(spec).expect("queue capacity covers the soak"));
    }
    pool.drain();
    let snap = pool.metrics().snapshot();
    pool.shutdown();

    for id in &ids {
        assert!(pool.status(*id).unwrap().is_terminal());
    }
    let report = TraceReport::from_events(ring.events().iter());
    let summary = ServeSummary::from_report(&report);
    assert_eq!(summary.submitted, JOBS as u64);
    assert_eq!(summary.lost, 0, "{}", summary.render());
    assert_eq!(summary.duplicate_runs, 0, "{}", summary.render());
    assert!(
        summary.evicted >= 1,
        "chaos schedules device losses; none evicted:\n{}",
        summary.render()
    );
    assert!(
        summary.resumed >= 1,
        "an evicted job with checkpoints must resume:\n{}",
        summary.render()
    );
    assert!(summary.checkpoints > 0 && summary.checkpoint_bytes > 0);
    // Every Eviction event pairs with a Requeued transition of the same
    // job, and at least one eviction was a watchdog ("hung") one.
    let mut reasons = std::collections::BTreeSet::new();
    for ev in ring.events() {
        if let TraceEvent::Eviction { job, reason, .. } = ev {
            reasons.insert(reason.clone());
            assert!(
                report.jobs[&job].requeues >= 1,
                "Eviction without a Requeued pairing for job {job}"
            );
        }
    }
    assert!(
        reasons.contains("device_loss"),
        "expected device-loss evictions, saw {reasons:?}"
    );
    assert!(
        reasons.contains("hung"),
        "expected hung-job evictions, saw {reasons:?}"
    );
    // The machine-greppable line carries the resilience counters.
    let rendered = summary.render();
    assert!(rendered.contains("SOAK lost=0 dup=0 sanitizer_violations=0 resumed="));

    // New series flow through the exposition format and back.
    let text = morph_metrics::expose(&snap);
    let parsed = morph_metrics::parse_exposition(&text).expect("valid exposition");
    for name in [
        "morph_jobs_evicted_total",
        "morph_jobs_resumed_total",
        "morph_device_health",
        "morph_checkpoint_bytes_count",
    ] {
        assert!(
            parsed.samples.iter().any(|s| s.name == name),
            "missing {name} in exposition:\n{text}"
        );
    }
}

#[test]
fn a_hung_job_is_evicted_and_finishes_elsewhere() {
    let ring = Arc::new(RingSink::new(1 << 14));
    let mut pool = chaos_pool(2, &ring);
    // One barrier stall far beyond the hang budget: the watchdog must
    // cancel the run and the job must still finish — on the other slot,
    // resuming from the checkpoints taken before the stall.
    let id = pool
        .submit(
            JobSpec::new(
                "t",
                Workload::Mst {
                    nodes: 120,
                    edges: 360,
                    seed: 5,
                },
            )
            .with_fault_plan(Arc::new(FaultPlan::new().with_barrier_stall(
                1,
                0,
                0,
                CHAOS_STALL,
            ))),
        )
        .unwrap();
    let status = pool.wait(id).unwrap();
    assert!(
        matches!(status, JobStatus::Finished { .. }),
        "hung job must finish after eviction, got {status:?}"
    );
    pool.shutdown();

    let report = TraceReport::from_events(ring.events().iter());
    let row = &report.jobs[&id];
    assert_eq!(row.outcome, Some(JobEventKind::Finished));
    assert_eq!(row.evictions, 1, "exactly one watchdog eviction");
    assert_eq!(row.starts, 2);
    let (evicted_from, reason) = ring
        .events()
        .iter()
        .find_map(|ev| match ev {
            TraceEvent::Eviction { device, reason, .. } => Some((*device, reason.clone())),
            _ => None,
        })
        .expect("an Eviction event must be emitted");
    assert_eq!(reason, "hung");
    assert_ne!(row.device, Some(evicted_from), "restart must avoid the slot");
}

fn tiny_workload(kind: u8, seed: u64) -> Workload {
    match kind % 3 {
        0 => Workload::Sp {
            vars: 15,
            clauses: 40,
            k: 3,
            max_sweeps: 15,
            seed,
        },
        1 => Workload::Pta {
            vars: 12,
            constraints: 30,
            seed,
        },
        _ => Workload::Mst {
            nodes: 40,
            edges: 120,
            seed,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across random device-loss schedules, device counts and workload
    /// mixes: every admitted job reaches exactly one terminal state, no
    /// job is lost or duplicated, and jobs that finished — including the
    /// evicted-and-resumed ones — report real work.
    #[test]
    fn seeded_device_loss_schedules_preserve_integrity(
        jobs in prop::collection::vec((any::<u8>(), any::<u64>()), 2..12),
        loss_launch in 0u64..6,
        devices in 2usize..5,
    ) {
        let ring = Arc::new(RingSink::new(1 << 16));
        let mut pool = MorphServe::start(
            ServeConfig {
                devices,
                sms_per_device: 2,
                queue_capacity: 256,
                checkpoint_every: 1,
                ..ServeConfig::default()
            },
            Tracer::new(Arc::clone(&ring) as _),
        );
        let mut ids = Vec::new();
        for (i, (kind, seed)) in jobs.iter().enumerate() {
            let mut spec = JobSpec::new("t", tiny_workload(*kind, *seed));
            if i % 2 == 0 {
                spec = spec.with_fault_plan(Arc::new(
                    FaultPlan::new().with_device_loss(loss_launch, 0, 0),
                ));
            }
            ids.push(pool.submit(spec).unwrap());
        }
        pool.drain();
        for id in &ids {
            let status = pool.status(*id).unwrap();
            prop_assert!(status.is_terminal(), "job {} not terminal: {status:?}", id);
            if let JobStatus::Finished { metrics } = status {
                prop_assert!(metrics.iterations > 0, "job {} reported no work", id);
            }
        }
        pool.shutdown();
        let report = TraceReport::from_events(ring.events().iter());
        let summary = ServeSummary::from_report(&report);
        prop_assert_eq!(summary.lost, 0, "{}", summary.render());
        prop_assert_eq!(summary.duplicate_runs, 0, "{}", summary.render());
        // Starts and requeues balance for every row (no deadlines, no
        // cancels in this schedule).
        for row in report.jobs.values() {
            prop_assert_eq!(row.starts, row.requeues + 1, "{:?}", row);
        }
    }
}

/// The watchdog must not misfire on healthy-but-slow jobs: a budget well
/// above any legitimate gap between host actions leaves a clean run
/// untouched even though the watchdog is armed and ticking.
#[test]
fn the_watchdog_leaves_progressing_jobs_alone() {
    let ring = Arc::new(RingSink::new(1 << 14));
    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 1,
            hang_budget: Some(Duration::from_millis(500)),
            ..ServeConfig::default()
        },
        Tracer::new(Arc::clone(&ring) as _),
    );
    let id = pool
        .submit(JobSpec::new(
            "t",
            Workload::Dmr {
                triangles: 400,
                seed: 2,
            },
        ))
        .unwrap();
    assert!(matches!(pool.wait(id).unwrap(), JobStatus::Finished { .. }));
    pool.shutdown();
    let report = TraceReport::from_events(ring.events().iter());
    let row = &report.jobs[&id];
    assert_eq!(row.evictions, 0, "no spurious watchdog eviction");
    assert_eq!(row.starts, 1);
}
