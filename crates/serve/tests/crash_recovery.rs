//! Crash-consistency properties of the durable serving plane.
//!
//! The contract under test (DESIGN.md §15): the write-ahead job journal
//! plus the verified checkpoint store give *exactly-once accounting*
//! over *at-least-once execution*. Concretely:
//!
//! * A journal truncated at **any** byte offset — a crash can tear the
//!   tail mid-frame anywhere — still folds to a prefix-consistent
//!   ledger: no job is double-accounted, no journaled terminal is
//!   contradicted, and finishing the surviving pending jobs yields
//!   exactly one terminal per admitted job.
//! * Reconciliation is idempotent: resuming the same state directory
//!   twice produces identical recovery stats and never re-runs a
//!   journaled terminal.
//! * Injected durability faults (torn writes, fsync denial) degrade —
//!   poisoned journal, logged alert — but never panic a pool thread and
//!   never corrupt the accounting visible after the next resume.

use morph_gpu_sim::FaultPlan;
use morph_serve::{
    fold_journal, scan_journal, JobSpec, Journal, JournalOutcome, JournalRecord, MorphServe,
    Priority, ServeConfig, ServeSummary, Workload,
};
use morph_trace::{RingSink, TraceReport, Tracer};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "morph-crashrec-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_cfg(dir: &Path) -> ServeConfig {
    ServeConfig {
        devices: 1,
        sms_per_device: 2,
        queue_capacity: 16,
        checkpoint_every: 1,
        state_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    }
}

fn small_jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::new("acme", Workload::Mst { nodes: 60, edges: 180, seed: 1 }),
        JobSpec::new("blue", Workload::Dmr { triangles: 80, seed: 2 }),
        JobSpec::new("acme", Workload::Mst { nodes: 50, edges: 140, seed: 3 }),
    ]
}

fn ring_pool(cfg: ServeConfig) -> (MorphServe, Arc<RingSink>) {
    let ring = Arc::new(RingSink::new(1 << 14));
    let pool = MorphServe::start(cfg, Tracer::new(Arc::clone(&ring) as _));
    (pool, ring)
}

fn summary(ring: &RingSink) -> ServeSummary {
    ServeSummary::from_report(&TraceReport::from_events(ring.events().iter()))
}

/// Build a journal exercising every record kind, return its raw bytes.
fn journal_fixture(dir: &Path) -> Vec<u8> {
    let path = dir.join("journal.wal");
    let admit = |job: u64, deadline_ms: u64| JournalRecord::Admitted {
        job,
        tenant: format!("t{job}"),
        priority: if job.is_multiple_of(2) { Priority::High } else { Priority::Normal },
        deadline_ms,
        max_attempts: 2,
        workload: format!("mst {} {} {job}", 40 + job, 90 + job),
    };
    {
        let (journal, scan) = Journal::open(&path, None).unwrap();
        assert_eq!(scan.records.len(), 0);
        for job in 1..=5 {
            journal.append(&admit(job, if job == 4 { 250 } else { 0 }));
        }
        for job in 1..=4 {
            journal.append(&JournalRecord::Started { job, device: job % 2, attempt: 1 });
        }
        journal.append(&JournalRecord::Checkpointed { job: 1, version: 1, iteration: 3 });
        journal.append(&JournalRecord::Checkpointed { job: 3, version: 2, iteration: 9 });
        journal.append(&JournalRecord::Requeued { job: 3, reason: "evicted: device lost".into() });
        journal.append(&JournalRecord::Finished { job: 1 });
        journal.append(&JournalRecord::Failed { job: 2, permanent: true });
        journal.append(&JournalRecord::Cancelled { job: 4 });
        journal.sync();
    }
    std::fs::read(&path).unwrap()
}

/// The tentpole property: truncate the journal at EVERY byte offset and
/// check that the fold is prefix-consistent and completable to exactly
/// one terminal per surviving admitted job. A crash never "loses" a
/// job's accounting (absent means never durably admitted — the replay
/// client resubmits) and never duplicates one.
#[test]
fn truncation_at_every_byte_offset_is_prefix_consistent_and_completable() {
    let dir = scratch("everybyte");
    let full = journal_fixture(&dir);
    let full_fold = fold_journal(&scan_journal(dir.join("journal.wal")).unwrap().records);
    assert_eq!(full_fold.len(), 5);

    let cut = dir.join("cut.wal");
    for end in 0..=full.len() {
        std::fs::write(&cut, &full[..end]).unwrap();

        // Read-only scan: deterministic, idempotent, never errors.
        let scan_a = scan_journal(&cut).unwrap();
        let scan_b = scan_journal(&cut).unwrap();
        assert_eq!(scan_a, scan_b, "scan not deterministic at offset {end}");
        assert_eq!(scan_a.skipped, 0, "fixture has no unknown-kind records");
        let ledgers = fold_journal(&scan_a.records);

        for (job, ledger) in &ledgers {
            // Prefix consistency: everything visible in the cut is a
            // prefix of the full history, so a terminal seen here must
            // be the same terminal the full journal records.
            let full_ledger = full_fold.get(job).expect("cut admits ⊆ full admits");
            if let Some(outcome) = ledger.terminal {
                assert_eq!(Some(outcome), full_ledger.terminal, "offset {end} job {job}");
            }
            assert!(ledger.terminal_records <= 1, "offset {end} job {job} double terminal");
            assert!(ledger.starts <= full_ledger.starts);
            // Every surviving admit must rebuild a runnable spec — the
            // fixture's workloads are all well-formed.
            assert!(ledger.spec().is_some(), "offset {end} job {job} spec lost");
        }

        // Completability: reopen (durably truncating the torn tail),
        // finish every pending job, and demand exactly-once accounting.
        {
            let (journal, reopened) = Journal::open(&cut, None).unwrap();
            assert_eq!(reopened.records, scan_a.records, "open/scan disagree at {end}");
            for (job, ledger) in fold_journal(&reopened.records) {
                if ledger.terminal.is_none() {
                    journal.append(&JournalRecord::Finished { job });
                }
            }
            journal.sync();
        }
        let healed = fold_journal(&scan_journal(&cut).unwrap().records);
        assert_eq!(healed.len(), ledgers.len(), "offset {end} admit set changed");
        for (job, ledger) in &healed {
            assert!(ledger.terminal.is_some(), "offset {end} job {job} lost");
            assert_eq!(ledger.terminal_records, 1, "offset {end} job {job} duplicated");
        }
        // And the second open after healing finds a clean tail.
        let rescan = scan_journal(&cut).unwrap();
        assert_eq!(rescan.truncated_bytes, 0, "offset {end} left a torn tail");
    }
}

/// Journaled terminals are never re-run: a finished run resumed twice
/// reports identical recovery stats, zero new submissions, and the
/// journal still holds exactly one terminal per job.
#[test]
fn reconciliation_is_idempotent_and_never_reruns_terminals() {
    let dir = scratch("idem");
    {
        let (mut pool, ring) = ring_pool(durable_cfg(&dir));
        for spec in small_jobs() {
            pool.submit(spec).unwrap();
        }
        pool.drain();
        pool.shutdown();
        let s = summary(&ring);
        assert_eq!(s.lost, 0);
        assert_eq!(s.finished + s.failed + s.cancelled, 3);
    }
    let mut stats = Vec::new();
    for round in 0..2 {
        let (mut pool, ring) = ring_pool(durable_cfg(&dir));
        let rec = pool.recovery();
        pool.drain();
        pool.shutdown();
        let s = summary(&ring);
        assert_eq!(rec.journaled_jobs, 3, "round {round}");
        assert_eq!(rec.terminal(), 3, "round {round} re-ran a terminal");
        assert_eq!(rec.recovered + rec.replayed, 0, "round {round}");
        assert_eq!(s.submitted, 0, "round {round} re-submitted");
        assert_eq!(
            s.finished_base + s.failed_base + s.cancelled_base,
            3,
            "round {round} lifetime accounting"
        );
        stats.push(rec);
    }
    assert_eq!(stats[0], stats[1], "reconciliation not idempotent");
    let ledgers = fold_journal(&scan_journal(dir.join("journal.wal")).unwrap().records);
    assert_eq!(ledgers.len(), 3);
    for (job, ledger) in ledgers {
        assert_eq!(ledger.terminal_records, 1, "job {job} accounted twice");
    }
}

/// A journal holding an admitted-and-started job with no terminal — the
/// shape a SIGKILL leaves behind — must be replayed to completion on
/// resume, with the restart journaled under the same job id.
#[test]
fn pending_job_from_a_killed_run_replays_to_completion() {
    let dir = scratch("pending");
    {
        let (journal, _) = Journal::open(dir.join("journal.wal"), None).unwrap();
        journal.append(&JournalRecord::Admitted {
            job: 7,
            tenant: "acme".into(),
            priority: Priority::High,
            deadline_ms: 0,
            max_attempts: 3,
            workload: Workload::Mst { nodes: 60, edges: 180, seed: 1 }.encode(),
        });
        journal.append(&JournalRecord::Started { job: 7, device: 0, attempt: 1 });
        journal.sync();
    }
    let (mut pool, ring) = ring_pool(durable_cfg(&dir));
    let rec = pool.recovery();
    assert_eq!(rec.journaled_jobs, 1);
    assert_eq!(rec.replayed, 1, "no snapshot on disk: must restart, not resume");
    assert_eq!(rec.recovered, 0);
    pool.drain();
    pool.shutdown();
    let s = summary(&ring);
    assert_eq!(s.lost, 0);
    assert_eq!(s.duplicate_runs, 0);
    assert_eq!(s.replayed, 1);
    let ledgers = fold_journal(&scan_journal(dir.join("journal.wal")).unwrap().records);
    let ledger = &ledgers[&7];
    assert_eq!(ledger.terminal, Some(JournalOutcome::Finished));
    assert_eq!(ledger.terminal_records, 1);
    assert!(ledger.starts >= 2, "restart must journal a fresh Started");
}

/// A torn write poisons the journal (as if the process died at that
/// byte) without panicking a pool thread; the next resume truncates the
/// torn frame back to the last good prefix and the replay client's
/// resubmission restores exactly-once accounting.
///
/// The tear is armed at durable-append call 0, which is deterministically
/// the first job's `Admitted` record: `submit` journals write-ahead, and
/// the checkpoint store cannot save before a job has been admitted.
#[test]
fn torn_write_poisons_quietly_and_the_resume_heals_it() {
    let dir = scratch("torn");
    let plan = Arc::new(FaultPlan::new().with_torn_write(0));
    {
        let mut cfg = durable_cfg(&dir);
        cfg.durability_faults = Some(Arc::clone(&plan));
        let (mut pool, ring) = ring_pool(cfg);
        for spec in small_jobs() {
            pool.submit(spec).unwrap();
        }
        pool.drain();
        let torn = pool.journal().map(|j| j.write_faults()).unwrap_or(0);
        pool.shutdown();
        assert_eq!(torn, 1, "the injected torn write must hit the journal");
        // In-memory serving is unaffected — the crash is simulated on
        // the durable plane only.
        assert_eq!(summary(&ring).lost, 0);
    }
    assert!(plan.exhausted(), "every armed durability fault fired");
    let before = scan_journal(dir.join("journal.wal")).unwrap();
    assert!(before.truncated_bytes > 0, "torn frame must be visible pre-resume");
    assert_eq!(before.records.len(), 0, "nothing before the tear survives");

    // Resume: the journal heals to the empty prefix, so the replay
    // client resubmits everything — exactly what the `--resume` skip
    // logic does when `journaled_jobs` comes back short.
    let (mut pool, ring) = ring_pool(durable_cfg(&dir));
    let rec = pool.recovery();
    assert_eq!(rec.truncated_bytes, before.truncated_bytes);
    assert_eq!(rec.journaled_jobs, 0, "torn admit was never durably admitted");
    for spec in small_jobs() {
        pool.submit(spec).unwrap();
    }
    pool.drain();
    pool.shutdown();
    assert_eq!(summary(&ring).lost, 0);
    let ledgers = fold_journal(&scan_journal(dir.join("journal.wal")).unwrap().records);
    assert_eq!(ledgers.len(), 3);
    for (job, ledger) in ledgers {
        assert!(ledger.terminal.is_some(), "job {job} lost across the tear");
        assert_eq!(ledger.terminal_records, 1, "job {job} duplicated across the tear");
    }
}

/// Denied fsyncs are skipped and counted, never panicked on: the run
/// completes, the appends still land (the OS just wasn't forced to
/// flush them), and the next resume sees every terminal. Which durable
/// artifact the denial lands on (journal batch sync vs store save) is
/// timing-dependent, so the assertion is on the plan having fired and
/// on the accounting surviving — not on the placement.
#[test]
fn fsync_denial_degrades_without_panic_or_lost_accounting() {
    let dir = scratch("fsync");
    let plan = Arc::new(FaultPlan::new().with_fsync_denial(0));
    {
        let mut cfg = durable_cfg(&dir);
        cfg.durability_faults = Some(Arc::clone(&plan));
        let (mut pool, ring) = ring_pool(cfg);
        for spec in small_jobs() {
            pool.submit(spec).unwrap();
        }
        pool.drain();
        pool.shutdown();
        assert!(plan.exhausted(), "the injected fsync denial must have fired");
        assert_eq!(summary(&ring).lost, 0);
    }
    let (mut pool, _ring) = ring_pool(durable_cfg(&dir));
    let rec = pool.recovery();
    assert_eq!(rec.journaled_jobs, 3);
    assert_eq!(rec.terminal(), 3, "all terminals survived the denied fsync");
    pool.drain();
    pool.shutdown();
}
