//! Andersen points-to analysis over the six SPEC-like inputs of Fig. 10,
//! with all three engines cross-checked against each other.
//!
//! ```sh
//! cargo run --release --example pointer_analysis
//! ```

use morphgpu::pta::{cpu, gpu, serial};
use morphgpu::workloads::pta::spec_suite;
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    println!(
        "{:<12} {:>6} {:>6} | {:>12} {:>12} {:>12} | {:>10}",
        "benchmark", "vars", "cons", "serial", "multicore", "virtualGPU", "pts facts"
    );

    let mut total_gpu = std::time::Duration::ZERO;
    for (name, prob) in spec_suite() {
        let t = Instant::now();
        let s_serial = serial::solve(&prob);
        let t_serial = t.elapsed();

        let t = Instant::now();
        let s_cpu = cpu::solve(&prob, threads);
        let t_cpu = t.elapsed();

        let t = Instant::now();
        let out = gpu::solve_with(&prob, Default::default(), threads);
        let t_gpu = t.elapsed();
        total_gpu += t_gpu;

        assert_eq!(s_serial, s_cpu, "{name}: cpu fixed point differs");
        assert_eq!(s_serial, out.solution, "{name}: gpu fixed point differs");
        let facts: usize = s_serial.iter().map(Vec::len).sum();
        println!(
            "{:<12} {:>6} {:>6} | {:>12.2?} {:>12.2?} {:>12.2?} | {:>10}",
            name,
            prob.num_vars,
            prob.constraints.len(),
            t_serial,
            t_cpu,
            t_gpu,
            facts
        );
    }
    println!(
        "\nall six analyses agree across engines; virtual-GPU total: {total_gpu:.2?} \
         (the paper's GPU analyses all six in 74 ms)"
    );
}
