//! Delaunay Mesh Refinement across all three engines, plus the Fig. 2
//! parallelism profile.
//!
//! ```sh
//! cargo run --release --example mesh_refinement [triangles]
//! ```

use morphgpu::dmr::{cpu::refine_cpu, gpu::refine_gpu, profile, serial, DmrOpts, OptLevel};
use morphgpu::workloads::mesh::random_mesh;

fn main() {
    let target: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20_000);
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    println!("input: ~{target} triangles, {threads} workers\n");

    // Serial (the Triangle role).
    let mut m = random_mesh::<f64>(target, 1);
    let s0 = m.stats();
    let serial_stats = serial::refine(&mut m);
    m.validate(true).expect("serial result valid");
    println!(
        "serial    : {:>9.2?}  ({} -> {} triangles, {} refined)",
        serial_stats.wall,
        s0.live,
        m.stats().live,
        serial_stats.refined
    );

    // Speculative multicore (the Galois role).
    let mut m = random_mesh::<f64>(target, 1);
    let cpu_stats = refine_cpu(&mut m, threads);
    m.validate(true).expect("cpu result valid");
    println!(
        "multicore : {:>9.2?}  ({} aborts)",
        cpu_stats.wall, cpu_stats.aborted
    );

    // Virtual GPU, fully optimised.
    let mut m = random_mesh::<f32>(target, 1);
    let gpu_out = refine_gpu(&mut m, DmrOpts::default(), threads);
    m.validate(true).expect("gpu result valid");
    println!(
        "virtualGPU: {:>9.2?}  ({} launches, abort ratio {:.1}%, divergence {:.1}%)",
        gpu_out.stats.wall,
        gpu_out.iterations,
        100.0 * gpu_out.launch.abort_ratio(),
        100.0 * gpu_out.launch.divergence_ratio(),
    );

    // The Fig. 8 ablation ladder on a smaller mesh.
    println!("\noptimisation ladder (Fig. 8), ~{} triangles:", target / 4);
    for level in OptLevel::ALL {
        let wall = match level.precision() {
            morphgpu::dmr::opts::Precision::F64 => {
                let mut m = random_mesh::<f64>(target / 4, 2);
                refine_gpu(&mut m, level.opts(), threads).stats.wall
            }
            morphgpu::dmr::opts::Precision::F32 => {
                let mut m = random_mesh::<f32>(target / 4, 2);
                refine_gpu(&mut m, level.opts(), threads).stats.wall
            }
        };
        println!("  {:<42} {:>9.2?}", level.label(), wall);
    }

    // Fig. 2: available parallelism per computation step.
    let mut m = random_mesh::<f64>(target / 2, 3);
    let prof = profile::parallelism_profile(&mut m);
    let peak = prof.iter().max().copied().unwrap_or(0);
    println!(
        "\nparallelism profile (Fig. 2): {} steps, start {}, peak {}, end {}",
        prof.len(),
        prof.first().copied().unwrap_or(0),
        peak,
        prof.last().copied().unwrap_or(0)
    );
    // Coarse ASCII sparkline.
    if peak > 0 {
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
        let line: String = prof
            .iter()
            .map(|&p| glyphs[(p * 7) / peak.max(1)])
            .collect();
        println!("  [{line}]");
    }
}
