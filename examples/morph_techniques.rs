//! A tour of the paper's generic morph techniques, used directly —
//! without any of the four algorithms. Shows what `morph-core` +
//! `morph-gpu-sim` give you for building a *new* morph algorithm.
//!
//! ```sh
//! cargo run --release --example morph_techniques
//! ```

use morphgpu::core::addition::{BumpAllocator, GrowthPolicy};
use morphgpu::core::deletion::{DeletionMarks, RecyclePool};
use morphgpu::core::ConflictTable;
use morphgpu::gpu_sim::{BarrierKind, GpuConfig, Kernel, ThreadCtx, VirtualGpu};
use std::sync::atomic::{AtomicU32, Ordering};

/// A synthetic morph workload over an array of "elements": every thread
/// repeatedly claims a random neighborhood via 3-phase conflict
/// resolution, then — if it wins — deletes one element and allocates a
/// replacement (recycled first). This is the skeleton every algorithm in
/// this repository instantiates.
struct DemoMorph<'a> {
    hoods: &'a [Vec<u32>],
    conflict: &'a ConflictTable,
    marks: &'a DeletionMarks,
    recycle: &'a RecyclePool,
    alloc: &'a BumpAllocator,
    won: &'a [AtomicU32],
}

impl Kernel for DemoMorph<'_> {
    fn phases(&self) -> usize {
        4
    }

    fn run(&self, phase: usize, ctx: &mut ThreadCtx<'_>) -> bool {
        let me = ctx.tid as u32;
        let hood = &self.hoods[ctx.tid];
        match phase {
            0 => {
                // §7.3 phase 1: optimistic racy marking.
                self.conflict.race(hood.iter().copied(), me);
                true
            }
            1 => {
                // §7.3 phase 2: priority arbitration (higher id wins).
                let ok = self.conflict.priority_check(hood.iter().copied(), me);
                self.won[ctx.tid].store(ok as u32, Ordering::Release);
                true
            }
            2 => {
                // §7.3 phase 3: read-only verification.
                if self.won[ctx.tid].load(Ordering::Acquire) == 1
                    && !self.conflict.check(hood.iter().copied(), me)
                {
                    self.won[ctx.tid].store(0, Ordering::Release);
                }
                true
            }
            _ => {
                // Commit: §7.2 deletion by marking + recycling, §7.1
                // bump allocation for the replacement.
                if self.won[ctx.tid].load(Ordering::Acquire) != 1 {
                    ctx.abort();
                    return true;
                }
                ctx.commit();
                let victim = hood[0];
                self.marks.mark_deleted(victim);
                self.recycle.donate(victim);
                let _slot = self
                    .recycle
                    .reclaim()
                    .or_else(|| self.alloc.try_alloc(ctx, 1))
                    .expect("provisioned");
                true
            }
        }
    }
}

fn main() {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let elements = 512;
    let cfg = GpuConfig::detect(4, 64);
    let nthreads = cfg.total_threads();

    let hoods: Vec<Vec<u32>> = (0..nthreads)
        .map(|_| {
            let mut h: Vec<u32> = (0..rng.gen_range(2..6))
                .map(|_| rng.gen_range(0..elements as u32))
                .collect();
            h.sort_unstable();
            h.dedup();
            h
        })
        .collect();

    // §7.1: plan capacity with the on-demand policy.
    let policy = GrowthPolicy::OnDemand { over_alloc: 1.5 };
    let capacity = policy.plan_capacity(elements, elements, nthreads);
    println!("provisioning {capacity} slots for {elements} elements + ≤{nthreads} additions");

    let conflict = ConflictTable::new(elements);
    let marks = DeletionMarks::new(capacity);
    let recycle = RecyclePool::new();
    let alloc = BumpAllocator::new(elements, capacity);
    let won: Vec<AtomicU32> = (0..nthreads).map(|_| AtomicU32::new(0)).collect();

    for kind in [
        BarrierKind::NaiveAtomic,
        BarrierKind::Hierarchical,
        BarrierKind::SenseReversing,
    ] {
        let gpu = VirtualGpu::new(cfg.clone().with_barrier(kind));
        let k = DemoMorph {
            hoods: &hoods,
            conflict: &conflict,
            marks: &marks,
            recycle: &recycle,
            alloc: &alloc,
            won: &won,
        };
        let stats = gpu.launch(&k);
        println!(
            "{kind:?}: {} commits, {} aborts (abort ratio {:.0}%), \
             {} barrier crossings, {} barrier RMWs, wall {:?}",
            stats.commits,
            stats.aborts,
            100.0 * stats.abort_ratio(),
            stats.barriers,
            stats.barrier_rmws,
            stats.wall,
        );
    }
    println!(
        "\nrecycle pool holds {} slots; bump high-water {} of {}",
        recycle.available(),
        alloc.len(),
        alloc.capacity()
    );
}
