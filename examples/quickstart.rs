//! Quickstart: run all four morph algorithms on small inputs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use morphgpu::dmr::{gpu::refine_gpu, DmrOpts};
use morphgpu::mst;
use morphgpu::pta;
use morphgpu::sp::{self, SolveOutcome, SpParams};
use morphgpu::workloads;

fn main() {
    let sms = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    println!("virtual GPU with {sms} SMs\n");

    // 1. Delaunay Mesh Refinement ---------------------------------------
    let mut mesh = workloads::mesh::random_mesh::<f32>(5_000, 42);
    let before = mesh.stats();
    let out = refine_gpu(&mut mesh, DmrOpts::default(), sms);
    let after = mesh.stats();
    println!(
        "DMR     : {} triangles ({} bad) -> {} triangles (0 bad) \
         in {:?}; {} cavities refined, {} launches, abort ratio {:.1}%",
        before.live,
        before.bad,
        after.live,
        out.stats.wall,
        out.stats.refined,
        out.iterations,
        100.0 * out.launch.abort_ratio(),
    );
    mesh.validate(true).expect("refined mesh must be valid");

    // 2. Survey Propagation ---------------------------------------------
    let formula = workloads::ksat::hard_instance(2_000, 3, 7);
    let (outcome, stats) = sp::gpu::solve(&formula, &SpParams::default(), sms);
    println!(
        "SP      : 3-SAT, {} vars, {} clauses (ratio {:.1}) -> {} \
         in {:?}; {} rounds, {} sweeps, {} vars fixed by SP",
        formula.num_vars,
        formula.num_clauses(),
        formula.ratio(),
        match &outcome {
            SolveOutcome::Sat(_) => "SAT (verified)",
            SolveOutcome::Unsat => "UNSAT (proved)",
            SolveOutcome::GaveUp => "gave up",
        },
        stats.wall,
        stats.rounds,
        stats.sweeps,
        stats.fixed_by_sp,
    );

    // 3. Points-to Analysis ----------------------------------------------
    let (name, prob) = &workloads::pta::spec_suite()[0];
    let t = std::time::Instant::now();
    let solution = pta::gpu::solve(prob, sms);
    let pts_total: usize = solution.iter().map(Vec::len).sum();
    println!(
        "PTA     : {name} ({} vars, {} constraints) -> {} points-to facts in {:?}",
        prob.num_vars,
        prob.constraints.len(),
        pts_total,
        t.elapsed(),
    );

    // 4. Boruvka MST -----------------------------------------------------
    let graph = workloads::graphs::rmat(14, 80_000, 3);
    let t = std::time::Instant::now();
    let result = mst::gpu::mst(&graph, sms);
    let oracle = mst::kruskal::mst(&graph);
    assert_eq!(result.weight, oracle.weight, "GPU MST must match Kruskal");
    println!(
        "MST     : RMAT {} nodes / {} edges -> weight {} ({} edges, {} rounds) in {:?} [verified]",
        graph.num_nodes(),
        graph.num_edges() / 2,
        result.weight,
        result.edges,
        result.rounds,
        t.elapsed(),
    );
}
