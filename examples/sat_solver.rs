//! Survey Propagation as a SAT solver on hard random k-SAT.
//!
//! ```sh
//! cargo run --release --example sat_solver [vars] [k]
//! ```

use morphgpu::sp::{cpu, gpu, serial, SolveOutcome, SpParams};
use morphgpu::workloads::ksat;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4_000);
    let k: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);

    let f = ksat::hard_instance(n, k, 11);
    println!(
        "hard {k}-SAT: {} vars, {} clauses (ratio {:.1})\n",
        f.num_vars,
        f.num_clauses(),
        f.ratio()
    );
    let params = SpParams::default();

    let describe = |name: &str, outcome: &SolveOutcome, stats: &morphgpu::sp::SolveStats| {
        println!(
            "{name:<10}: {:<14} {:>9.2?}  ({} rounds, {} sweeps, {} fixed by SP, {} endgame vars)",
            match outcome {
                SolveOutcome::Sat(a) => {
                    assert!(f.eval(a), "assignment must verify");
                    "SAT (verified)"
                }
                SolveOutcome::Unsat => "UNSAT (proved)",
                SolveOutcome::GaveUp => "gave up",
            },
            stats.wall,
            stats.rounds,
            stats.sweeps,
            stats.fixed_by_sp,
            stats.endgame_vars,
        );
    };

    let (o, s) = serial::solve(&f, &params);
    describe("serial", &o, &s);
    let (o, s) = cpu::solve(&f, &params, threads);
    describe("multicore", &o, &s);
    let (o, s) = gpu::solve(&f, &params, threads);
    describe("virtualGPU", &o, &s);

    // The Fig. 9 K-scaling observation: the uncached multicore engine
    // slows disproportionately as K grows, while the cached GPU engine
    // scales gently.
    println!("\nK-scaling (uncached CPU vs cached virtual-GPU propagation):");
    for kk in 3..=5 {
        let f = ksat::hard_instance(600, kk, 13);
        let (_, s_cpu) = cpu::solve(&f, &params, threads);
        let (_, s_gpu) = gpu::solve(&f, &params, threads);
        println!(
            "  K={kk}: multicore {:>9.2?}   virtualGPU {:>9.2?}",
            s_cpu.wall, s_gpu.wall
        );
    }
}
