//! Serving quickstart: a mixed multi-tenant workload on a pool of
//! virtual devices, with per-job tracing, a mid-run cancellation, and
//! the end-of-run fairness/latency summary.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use morphgpu::serve::{
    generate_mixed, JobSpec, MorphServe, Priority, ServeConfig, ServeSummary, Workload,
};
use morphgpu::trace::{RingSink, TraceReport, Tracer};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Every event from every device funnels through one ring; lines are
    // attributed per job, so the merged stream partitions cleanly.
    let ring = Arc::new(RingSink::new(1 << 16));
    let tracer = Tracer::new(Arc::clone(&ring) as _);

    let mut pool = MorphServe::start(
        ServeConfig {
            devices: 4,
            sms_per_device: 2,
            queue_capacity: 128,
            ..ServeConfig::default()
        },
        tracer,
    );

    // 24 seeded jobs across three tenants and all four pipelines…
    let mut ids = Vec::new();
    for spec in generate_mixed(24, 7) {
        ids.push(pool.submit(spec).expect("queue has room"));
    }
    // …plus one urgent, deadline-bound refinement job…
    let urgent = pool
        .submit(
            JobSpec::new(
                "acme",
                Workload::Dmr {
                    triangles: 200,
                    seed: 99,
                },
            )
            .with_priority(Priority::High)
            .with_deadline(Duration::from_secs(5)),
        )
        .unwrap();
    // …and one job we immediately change our mind about.
    let doomed = pool
        .submit(JobSpec::new(
            "blue",
            Workload::Mst {
                nodes: 400,
                edges: 1_200,
                seed: 5,
            },
        ))
        .unwrap();
    pool.cancel(doomed);

    println!("urgent job finished as {:?}\n", pool.wait(urgent).unwrap());
    pool.drain();
    pool.shutdown();

    // Everything below is derived from the trace stream alone.
    let report = TraceReport::from_events(ring.events().iter());
    print!("{}", report.render_jobs());
    print!("{}", ServeSummary::from_report(&report).render());
}
