//! Boruvka MST across the Fig. 11 graph families, comparing the
//! edge-merging baseline, the component-based CPU version, and the
//! virtual-GPU pipeline — all verified against Kruskal.
//!
//! ```sh
//! cargo run --release --example minimum_spanning_tree
//! ```

use morphgpu::mst::{component_cpu, edge_merge, gpu, kruskal};
use morphgpu::workloads::graphs;
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let inputs: Vec<(&str, morphgpu::graph::Csr)> = vec![
        ("road (USA-proxy)", graphs::road_network(180, 1)),
        ("grid-2d", graphs::grid2d(180, 2)),
        ("RMAT", graphs::rmat(15, 260_000, 3)),
        ("random4", graphs::random_graph(32_768, 131_072, 4)),
    ];

    println!(
        "{:<18} {:>8} {:>9} {:>6} | {:>12} {:>12} {:>12}",
        "graph", "nodes", "edges", "deg", "edge-merge", "component", "virtualGPU"
    );
    for (name, g) in &inputs {
        let oracle = kruskal::mst(g);

        let t = Instant::now();
        let a = edge_merge::mst(g, threads);
        let t_merge = t.elapsed();

        let t = Instant::now();
        let b = component_cpu::mst(g, threads);
        let t_comp = t.elapsed();

        let t = Instant::now();
        let c = gpu::mst(g, threads);
        let t_gpu = t.elapsed();

        assert_eq!(a.weight, oracle.weight, "{name}: edge-merge weight");
        assert_eq!(b.weight, oracle.weight, "{name}: component weight");
        assert_eq!(c.weight, oracle.weight, "{name}: gpu weight");

        println!(
            "{:<18} {:>8} {:>9} {:>6.1} | {:>12.2?} {:>12.2?} {:>12.2?}",
            name,
            g.num_nodes(),
            g.num_edges() / 2,
            g.avg_degree() / 2.0,
            t_merge,
            t_comp,
            t_gpu,
        );
    }
    println!(
        "\nall spanning-forest weights verified against Kruskal.\n\
         Expected shape (Fig. 11): edge-merging collapses on the dense RMAT/random\n\
         graphs; the component-based CPU code is fastest overall; the GPU pipeline\n\
         beats edge-merging on dense inputs but trails on sparse road/grid graphs."
    );
}
