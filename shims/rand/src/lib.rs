//! Vendored offline subset of `rand` 0.8.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of the rand API it uses: `StdRng` seeded via
//! `seed_from_u64`, the `Rng` extension methods (`gen`, `gen_range`,
//! `gen_bool`), `SliceRandom::{choose, shuffle}` and
//! `seq::index::sample`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, which is all the workspace relies
//! on (every call site uses `seed_from_u64` explicitly; nothing here is
//! used for cryptography).

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point the workspace
/// uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`. Different numeric stream than the real crate, but every
    /// use in this workspace only needs a deterministic, well-mixed stream
    /// per seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace's `small_rng` feature only ever seeds
    /// deterministically, so the same generator serves both.
    pub type SmallRng = StdRng;
}

/// Types that `Rng::gen` can produce (the subset of rand's `Standard`
/// distribution the workspace samples).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types `Rng::gen_range` can sample from a half-open `Range`.
pub trait UniformSample: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample empty range {:?}..{:?}",
                    range.start,
                    range.end
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is at most span/2^64 — irrelevant for the
                // test/workload generation this shim serves.
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample empty range {:?}..{:?}",
                    range.start,
                    range.end
                );
                let unit = <$t as StandardSample>::sample(rng);
                range.start + unit * (range.end - range.start)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// User-facing extension methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`choose`, `shuffle`).
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        use super::super::{Rng, RngCore};

        /// The result of [`sample`]: distinct indices in `0..length`.
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterate the sampled indices (by value, matching rand's
            /// `IndexVec::iter` which yields `usize`).
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Sample `amount` distinct indices from `0..length` via a partial
        /// Fisher–Yates shuffle.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + rng.gen_range(0..length - i);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "{frac}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle landing on identity is astronomically unlikely");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let idx = super::seq::index::sample(&mut rng, 20, 5);
            let got: BTreeSet<usize> = idx.iter().collect();
            assert_eq!(got.len(), 5);
            assert!(got.iter().all(|&i| i < 20));
        }
        let all = super::seq::index::sample(&mut rng, 4, 4);
        assert_eq!(all.iter().collect::<BTreeSet<_>>().len(), 4);
    }
}
