//! Vendored offline subset of `criterion`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of the criterion API its benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `BenchmarkId::new`,
//! `Bencher::iter` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short warm-up
//! then `sample_size` timed samples, and the per-iteration median is printed
//! to stdout. There is no statistical analysis, plotting, or HTML report —
//! the benches exist to compare engine configurations relative to each
//! other, and a median over a fixed sample count serves that.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Hands the routine-under-measurement to the harness.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the median over the configured sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes allocator / caches the way criterion does).
        black_box(routine());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.median = Some(times[times.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion's default is 100; benches in this
    /// workspace lower it for the heavy mesh/graph workloads).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            median: None,
        };
        f(&mut b);
        self.report(&id, b.median);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            median: None,
        };
        f(&mut b, input);
        self.report(&id, b.median);
        self
    }

    fn report(&self, id: &BenchmarkId, median: Option<Duration>) {
        match median {
            Some(t) => println!("{}/{}  median {:?}  ({} samples)", self.name, id, t, self.sample_size),
            None => println!("{}/{}  (no measurement: Bencher::iter never called)", self.name, id),
        }
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        self
    }
}

/// Identity function opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("counted", |b| {
            b.iter(|| runs += 1);
        });
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        g.finish();
    }

    fn target(c: &mut Criterion) {
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, target);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
