//! Vendored offline subset of `proptest`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of the proptest API its property tests use:
//! the `proptest!` macro (with `#![proptest_config(...)]`), strategies for
//! numeric ranges / tuples / `prop::collection::vec` / `any::<bool>()` /
//! `.prop_map(...)`, and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Semantics differ from the real crate in two deliberate ways: cases are
//! generated from a deterministic per-test seed (reproducible by
//! construction, no `PROPTEST_*` env handling), and there is **no input
//! shrinking** — a failing case reports its case index and message only.
//! For this workspace's model-checking style tests those are acceptable
//! trade-offs.

use std::marker::PhantomData;

pub mod test_runner {
    use rand::prelude::*;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// A failed `prop_assert!` — carried as an `Err` so assertions compose
    /// with `?`/`return` inside test bodies exactly like the real crate.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-(test, case) generator used by strategy sampling.
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name keeps distinct tests on distinct
            // streams without any runtime randomness.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }

        pub fn inner(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.inner().gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Element-count bound for [`vec()`]; built from a `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self(r)
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.0.is_empty() {
                self.size.0.start
            } else {
                rng.inner().gen_range(self.size.0.clone())
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.inner().gen()
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.inner().gen::<u64>() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize);

    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` — the "whole domain" strategy for simple types.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(PhantomData)
}

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                $( let $arg = $strat; )+
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&$arg, &mut __rng);
                    )+
                    let __result: $crate::test_runner::TestCaseResult = (|| {
                        { $body };
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l
        );
    }};
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            a in 3u32..9,
            pair in (0usize..4, -2.0f64..2.0),
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(pair.0 < 4);
            prop_assert!((-2.0..2.0).contains(&pair.1), "{} out of range", pair.1);
        }

        #[test]
        fn vec_strategy_respects_size(
            v in prop::collection::vec((0u32..10, any::<bool>()), 2..7),
        ) {
            prop_assert!((2..7).contains(&v.len()));
            for (x, _b) in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn prop_map_transforms(x in 0u32..100) {
            // Use via an inline strategy to exercise Map.
            let doubled = (0u32..50).prop_map(|v| v * 2);
            let mut rng = crate::test_runner::TestRng::for_case("inner", x);
            let d = doubled.sample(&mut rng);
            prop_assert!(d % 2 == 0 && d < 100);
        }

        #[test]
        fn early_return_ok_is_allowed(x in 0u32..10) {
            if x < 10 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = (0u64..1_000_000, 0.0f64..1.0);
        let a: Vec<_> = (0..10)
            .map(|c| s.sample(&mut crate::test_runner::TestRng::for_case("t", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| s.sample(&mut crate::test_runner::TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]), "stream should vary across cases");
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    // The macro expands a nested #[test] fn that cargo cannot collect;
    // here it is invoked purely for its body.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #[test]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
