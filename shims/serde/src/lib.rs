//! Vendored offline subset of `serde`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the slice of the serde API it actually uses: the
//! **serialize half** of the data model — `Serialize`, `Serializer`, and
//! the `SerializeStruct`/`SerializeSeq` compound builders — enough for
//! hand-written `impl Serialize` blocks (there is no derive macro here;
//! implementations are written out, which serde also supports).
//!
//! The one concrete serializer in the workspace is
//! `morph_trace::json::JsonSerializer`; this shim only defines the traits
//! so that `morph-gpu-sim` and friends can declare their types serializable
//! without depending on the tracing crate.
//!
//! Deviations from real serde: no `Deserialize`, no derive, no
//! `serialize_i*/u8/char/bytes/unit/newtype/map/enum` entry points (the
//! data the workspace serializes is structs, sequences, numbers, strings
//! and bools), and `Serializer` is passed by value exactly as in serde but
//! with a much smaller method set.

/// A data structure that can be serialized through any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format backend (e.g. the JSON writer in `morph-trace`).
pub trait Serializer: Sized {
    type Ok;
    type Error;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
}

/// Builder returned by [`Serializer::serialize_struct`].
pub trait SerializeStruct {
    type Ok;
    type Error;
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Builder returned by [`Serializer::serialize_seq`].
pub trait SerializeSeq {
    type Ok;
    type Error;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T)
        -> Result<(), Self::Error>;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Mirror of serde's `ser` module path (`use serde::ser::SerializeStruct`).
pub mod ser {
    pub use super::{Serialize, SerializeSeq, SerializeStruct, Serializer};
}

macro_rules! serialize_as_u64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_as_u64!(u8, u16, u32, u64, usize);

macro_rules! serialize_as_i64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_as_i64!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_f64(*self as f64)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self)
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut seq = s.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}
