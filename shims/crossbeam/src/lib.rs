//! Vendored offline subset of `crossbeam`.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the tiny slice of the crossbeam API it actually uses:
//! [`utils::CachePadded`] (false-sharing avoidance for the virtual-GPU
//! barrier and per-block shared memory) and [`queue::SegQueue`] (the
//! free-list behind triangle/vertex recycling). Semantics match the real
//! crate for these uses; performance characteristics are close enough for a
//! simulator (`SegQueue` here is a mutexed deque, not a lock-free segment
//! queue).

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache-line boundary so that
    /// adjacent values never share a line.
    #[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue. The real crossbeam implementation is
    /// lock-free; this vendored stand-in is a mutexed deque with the same
    /// API and linearizable behaviour.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;
    use super::utils::CachePadded;

    #[test]
    fn cache_padded_derefs_and_aligns() {
        let p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(CachePadded::new(3u64).into_inner(), 3);
    }

    #[test]
    fn seg_queue_fifo_across_threads() {
        let q = SegQueue::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..100 {
                        q.push(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(q.len(), 400);
        let mut seen = Vec::new();
        while let Some(v) = q.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        let want: Vec<u32> = (0..4u32).flat_map(|t| (0..100).map(move |i| t * 1000 + i)).collect();
        let mut want = want;
        want.sort_unstable();
        assert_eq!(seen, want);
        assert!(q.is_empty());
    }
}
